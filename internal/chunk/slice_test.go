package chunk

// Shard slicing tests: a shard must stay a valid container whose kept
// chunks decode bit-identically, whose stubs audit as non-recoverable,
// and whose keep-all slice reproduces the input byte for byte — on both
// the v2 golden fixture and the v3 adaptive one.

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

var sliceFixtures = []struct{ name, path string }{
	{"v2", filepath.Join("..", "..", "testdata", "golden_pwe_24x17x9_v2.sperr")},
	{"v3", filepath.Join("..", "..", "testdata", "golden_adaptive_48x32x32_v3.sperr")},
}

func readFixtureFile(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSliceShardKeepAllIsIdentity(t *testing.T) {
	for _, fx := range sliceFixtures {
		t.Run(fx.name, func(t *testing.T) {
			stream := readFixtureFile(t, fx.path)
			shard, err := SliceShard(stream, func(int) bool { return true })
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(shard, stream) {
				t.Fatalf("keep-all shard differs from input (%d vs %d bytes)", len(shard), len(stream))
			}
		})
	}
}

func TestSliceShardOwnedChunksDecodeIdentically(t *testing.T) {
	for _, fx := range sliceFixtures {
		t.Run(fx.name, func(t *testing.T) {
			stream := readFixtureFile(t, fx.path)
			info, err := Describe(stream)
			if err != nil {
				t.Fatal(err)
			}
			if info.NumChunks < 2 {
				t.Fatalf("fixture has %d chunks; need >= 2 to slice", info.NumChunks)
			}
			// Keep the even chunks; the odd ones become stubs.
			keep := func(i int) bool { return i%2 == 0 }
			shard, err := SliceShard(stream, keep)
			if err != nil {
				t.Fatal(err)
			}
			if len(shard) >= len(stream) {
				t.Fatalf("shard (%d bytes) not smaller than container (%d bytes)", len(shard), len(stream))
			}

			// The shard still describes the full volume.
			sInfo, err := Describe(shard)
			if err != nil {
				t.Fatalf("shard does not describe: %v", err)
			}
			if sInfo.VolumeDims != info.VolumeDims || sInfo.NumChunks != info.NumChunks {
				t.Fatalf("shard geometry %v/%d, want %v/%d",
					sInfo.VolumeDims, sInfo.NumChunks, info.VolumeDims, info.NumChunks)
			}
			for i, ci := range sInfo.Chunks {
				if ci.Codec != info.Chunks[i].Codec {
					t.Fatalf("chunk %d codec %v, want %v", i, ci.Codec, info.Chunks[i].Codec)
				}
			}

			// Kept chunks decode bit-identically through the region path.
			for i, ci := range info.Chunks {
				if !keep(i) {
					continue
				}
				want, err := DecompressRegion(stream, ci.Origin[0], ci.Origin[1], ci.Origin[2], ci.Dims, 1)
				if err != nil {
					t.Fatalf("chunk %d from container: %v", i, err)
				}
				got, err := DecompressRegion(shard, ci.Origin[0], ci.Origin[1], ci.Origin[2], ci.Dims, 1)
				if err != nil {
					t.Fatalf("chunk %d from shard: %v", i, err)
				}
				for k := range want.Data {
					if math.Float64bits(want.Data[k]) != math.Float64bits(got.Data[k]) {
						t.Fatalf("chunk %d sample %d differs", i, k)
					}
				}
			}

			// The audit sees exactly the kept chunks as recoverable, with an
			// intact footer and every stub at most StubFrameMaxLen bytes.
			rep, err := Audit(shard)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.IndexIntact {
				t.Fatal("shard footer not intact under audit")
			}
			if rep.Resynced {
				t.Fatal("shard audit resynced")
			}
			for i, co := range rep.Chunks {
				if keep(i) != co.Recovered {
					t.Fatalf("chunk %d recovered=%v, keep=%v", i, co.Recovered, keep(i))
				}
				if !co.Recovered && co.Length > StubFrameMaxLen {
					t.Fatalf("stub chunk %d indexed at %d bytes (> %d)", i, co.Length, StubFrameMaxLen)
				}
			}

			// A stub chunk must fail decode loudly, never yield silent data.
			for i, ci := range info.Chunks {
				if keep(i) {
					continue
				}
				if _, err := DecompressRegion(shard, ci.Origin[0], ci.Origin[1], ci.Origin[2], ci.Dims, 1); err == nil {
					t.Fatalf("stub chunk %d decoded without error", i)
				}
				break
			}
		})
	}
}

func TestSliceShardRejectsV1(t *testing.T) {
	stream := readFixtureFile(t, filepath.Join("..", "..", "testdata", "golden_pwe_24x17x9.sperr"))
	if _, err := SliceShard(stream, func(int) bool { return true }); err == nil {
		t.Fatal("slicing a v1 container succeeded; want error")
	}
}

func TestSliceShardKeepNone(t *testing.T) {
	// An all-stub shard (a peer owning no chunks of a volume) still
	// describes the geometry — that is what lets every node coordinate.
	vol := grid.NewVolume(grid.D3(20, 11, 6))
	for i := range vol.Data {
		vol.Data[i] = math.Sin(0.1 * float64(i))
	}
	stream, _, err := Compress(vol, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 1e-3},
		ChunkDims: grid.D3(8, 8, 8),
	})
	if err != nil {
		t.Fatal(err)
	}
	shard, err := SliceShard(stream, func(int) bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	info, err := Describe(shard)
	if err != nil {
		t.Fatal(err)
	}
	if info.VolumeDims != vol.Dims || info.NumChunks != 6 {
		t.Fatalf("all-stub shard describes %v/%d chunks", info.VolumeDims, info.NumChunks)
	}
	rep, err := Audit(shard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Recovered != 0 || !rep.IndexIntact {
		t.Fatalf("all-stub shard: recovered %d, index intact %v", rep.Recovered, rep.IndexIntact)
	}
}
