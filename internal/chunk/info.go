package chunk

import (
	"sperr/internal/codec"
	"sperr/internal/grid"
)

// Info describes a container stream without decoding any data payloads —
// the "what is in this archive" inspection a downstream user needs before
// committing to a decode.
type Info struct {
	// Version is the container format version (1, 2, or 3).
	Version    int
	VolumeDims grid.Dims
	ChunkDims  grid.Dims
	NumChunks  int
	TotalBytes int

	// CodecCounts maps backend name to the number of chunks it coded,
	// straight from the v3 footer's codec map; pre-v3 containers are all
	// SPERR. Always non-nil.
	CodecCounts map[string]int

	// Mode, Tol and Entropy are the container-wide coding parameters (all
	// chunks of one container share them). SpeckBits and OutlierBits total
	// the embedded stream lengths across chunks. On v2 these come straight
	// from the index footer; on v1 they are summed from chunk headers.
	Mode        codec.Mode
	Tol         float64
	Entropy     bool
	SpeckBits   uint64
	OutlierBits uint64

	Chunks []ChunkInfo
}

// ChunkInfo describes one chunk's frame.
type ChunkInfo struct {
	Origin [3]int
	Dims   grid.Dims
	// Offset is the frame's byte offset in the container (of its length
	// prefix); CompressedBytes its payload size.
	Offset          int
	CompressedBytes int
	// Codec identifies the backend that coded this chunk (from the v3
	// footer codec map; always CodecSPERR pre-v3).
	Codec codec.CodecID
	// Meta is the chunk's coded parameters. Describing a v2 container
	// reads only the header and index footer — no frame payloads — so
	// Meta carries just the container-wide fields (Mode, Tol, Entropy);
	// per-chunk plane/pass counts and bit splits stay zero. v1 containers
	// have no footer, so Meta is parsed (bounded-prefix) from each frame
	// and is complete.
	Meta codec.StreamMeta
}

// Describe inspects a container stream. For format v2 it parses only the
// fixed header and the index footer; for v1 it additionally parses each
// chunk's 40-byte header through a bounded prefix inflate. No chunk data
// is decoded either way.
func Describe(stream []byte) (*Info, error) {
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	info := &Info{
		Version:     c.version,
		VolumeDims:  c.volDims,
		ChunkDims:   c.chunkDims,
		NumChunks:   len(c.chunks),
		TotalBytes:  len(stream),
		CodecCounts: make(map[string]int, 1),
		Chunks:      make([]ChunkInfo, 0, len(c.chunks)),
	}
	overhead := 4
	if c.version >= 2 {
		overhead = frameOverheadV2
	}
	off := fixedHeaderSize
	for i, ch := range c.chunks {
		ci := ChunkInfo{
			Origin:          [3]int{ch.X0, ch.Y0, ch.Z0},
			Dims:            ch.Dims,
			Offset:          off,
			CompressedBytes: len(c.payloads[i]),
		}
		if c.codecs != nil {
			ci.Codec = c.codecs[i]
		}
		info.CodecCounts[ci.Codec.String()]++
		off += overhead + len(c.payloads[i])
		if c.version >= 2 {
			ci.Meta = codec.StreamMeta{Codec: ci.Codec, Mode: c.agg.mode, Tol: c.agg.tol, Entropy: c.agg.entropy}
		} else {
			meta, err := codec.DescribeChunk(c.payloads[i])
			if err != nil {
				return nil, err
			}
			ci.Meta = *meta
			info.SpeckBits += meta.SpeckBits
			info.OutlierBits += meta.OutlierBits
			if i == 0 {
				info.Mode, info.Tol, info.Entropy = meta.Mode, meta.Tol, meta.Entropy
			}
		}
		info.Chunks = append(info.Chunks, ci)
	}
	if c.version >= 2 {
		info.Mode, info.Tol, info.Entropy = c.agg.mode, c.agg.tol, c.agg.entropy
		info.SpeckBits, info.OutlierBits = c.agg.speckBits, c.agg.outlierBits
	}
	return info, nil
}
