package chunk

import (
	"sperr/internal/codec"
	"sperr/internal/grid"
)

// Info describes a container stream without decoding any data payloads —
// the "what is in this archive" inspection a downstream user needs before
// committing to a decode.
type Info struct {
	VolumeDims grid.Dims
	ChunkDims  grid.Dims
	NumChunks  int
	TotalBytes int
	Chunks     []ChunkInfo
}

// ChunkInfo describes one chunk's coded parameters.
type ChunkInfo struct {
	Origin          [3]int
	Dims            grid.Dims
	CompressedBytes int
	Meta            codec.StreamMeta
}

// Describe parses a container stream and each chunk's header.
func Describe(stream []byte) (*Info, error) {
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	info := &Info{
		VolumeDims: c.volDims,
		ChunkDims:  c.chunkDims,
		NumChunks:  len(c.chunks),
		TotalBytes: len(stream),
	}
	for i, ch := range c.chunks {
		meta, err := codec.DescribeChunk(c.payloads[i])
		if err != nil {
			return nil, err
		}
		info.Chunks = append(info.Chunks, ChunkInfo{
			Origin:          [3]int{ch.X0, ch.Y0, ch.Z0},
			Dims:            ch.Dims,
			CompressedBytes: len(c.payloads[i]),
			Meta:            *meta,
		})
	}
	return info, nil
}
