package chunk

// Shard slicing for the cluster layer: a coordinator splits a container
// at frame boundaries and ships each peer only the frames of the chunks
// it owns. The shard is itself a valid container — same fixed header,
// same geometry, same footer layout — so a peer stores and serves it
// through the exact same code paths as a whole volume. Chunks the peer
// does not own become stub frames: an empty payload (v2) or the bare
// codec tag (v3), checksummed like any frame and indexed by a rewritten
// footer. Stubs parse and audit as "present but not recoverable", which
// is precisely the contract the shard store records as ownership.

import (
	"encoding/binary"
	"fmt"
)

// StubFrameMaxLen is the largest payload a shard stub frame may carry
// (the v3 codec tag byte). The shard store uses it to tell deliberate
// stubs apart from damaged frames: a non-recoverable chunk whose indexed
// payload is longer than this is corruption, not slicing.
const StubFrameMaxLen = 1

// SliceShard rebuilds a v2/v3 container keeping only the frames of the
// chunks for which keep returns true. Kept frames are copied verbatim
// (payload bytes and checksum unchanged, so their chunks later decode
// bit-identically); every other frame shrinks to a stub. The index
// footer is regenerated with the new offsets while preserving the codec
// map and the container-wide aggregates, so Describe on a shard reports
// the full volume's geometry and contract. Keeping every chunk
// reproduces the input byte for byte.
//
// v1 containers have no index footer to slice against and no frame
// checksums to carry ownership evidence; they are rejected.
func SliceShard(stream []byte, keep func(int) bool) ([]byte, error) {
	c, err := parseContainer(stream)
	if err != nil {
		return nil, err
	}
	if c.version < 2 {
		return nil, fmt.Errorf("chunk: cannot slice a v1 container (no index footer); repair upgrades it to v2")
	}
	magic := magicV2
	if c.version >= 3 {
		magic = magicV3
	}
	// Size the output: header + kept frames + stub frames + footer.
	size := fixedHeaderSize + indexSizeFor(c.version, len(c.chunks))
	for i := range c.chunks {
		size += frameOverheadV2
		if keep(i) {
			size += len(c.payloads[i])
		} else if c.version >= 3 {
			size += StubFrameMaxLen
		}
	}
	out := appendFixedHeader(make([]byte, 0, size), magic, c.volDims, c.chunkDims, len(c.chunks))
	entries := make([]indexEntry, len(c.chunks))
	for i := range c.chunks {
		var payload []byte
		var crc uint32
		if keep(i) {
			// payload() verifies the frame checksum, so a shard can never
			// launder a damaged frame into a "kept" chunk.
			payload, err = c.payload(i)
			if err != nil {
				return nil, err
			}
			crc = c.crcs[i]
		} else {
			if c.version >= 3 {
				if len(c.payloads[i]) < 1 {
					return nil, fmt.Errorf("%w: chunk %d frame empty", ErrCorrupt, i)
				}
				// Keep the codec tag so the stub still agrees with the
				// footer's codec map.
				payload = c.payloads[i][:1]
			}
			crc = frameCRC(payload)
		}
		entries[i] = indexEntry{offset: uint64(len(out)), length: uint32(len(payload)), crc: crc}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc)
	}
	return appendIndex(out, c.version, entries, c.codecs, c.agg, uint64(len(out))), nil
}
