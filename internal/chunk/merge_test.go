package chunk

// Shard merge tests: merging is the convergence primitive under
// replicated ingest, anti-entropy repair, and rejoin, so it must be
// idempotent (self-merge is identity), complementary shards must union
// back to the original bytes, and a damaged frame must always lose to
// an intact copy of the same chunk.

import (
	"bytes"
	"testing"
)

func TestMergeShardsSelfIsIdentity(t *testing.T) {
	for _, fx := range sliceFixtures {
		t.Run(fx.name, func(t *testing.T) {
			stream := readFixtureFile(t, fx.path)
			m, err := MergeShards(stream, stream)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m, stream) {
				t.Fatalf("self-merge differs from input (%d vs %d bytes)", len(m), len(stream))
			}
		})
	}
}

func TestMergeShardsComplementaryUnion(t *testing.T) {
	for _, fx := range sliceFixtures {
		t.Run(fx.name, func(t *testing.T) {
			stream := readFixtureFile(t, fx.path)
			even, err := SliceShard(stream, func(i int) bool { return i%2 == 0 })
			if err != nil {
				t.Fatal(err)
			}
			odd, err := SliceShard(stream, func(i int) bool { return i%2 == 1 })
			if err != nil {
				t.Fatal(err)
			}
			for _, pair := range [][2][]byte{{even, odd}, {odd, even}} {
				m, err := MergeShards(pair[0], pair[1])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(m, stream) {
					t.Fatal("merging complementary shards does not reproduce the original container")
				}
			}
			// Merging a shard with its own subset reproduces the shard.
			sub, err := SliceShard(stream, func(i int) bool { return i == 0 })
			if err != nil {
				t.Fatal(err)
			}
			m, err := MergeShards(even, sub)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(m, even) {
				t.Fatal("merging a shard with a subset of itself changed it")
			}
		})
	}
}

func TestMergeShardsDamagedFrameLosesToIntact(t *testing.T) {
	for _, fx := range sliceFixtures {
		t.Run(fx.name, func(t *testing.T) {
			stream := readFixtureFile(t, fx.path)
			c, err := parseContainer(stream)
			if err != nil {
				t.Fatal(err)
			}
			if len(c.chunks) < 2 {
				t.Skip("need at least 2 chunks")
			}

			// Damage chunk 0's frame payload in a copy of the full stream
			// (payloads alias the backing bytes, so flipping through the
			// parsed view corrupts the copy in place).
			damaged := append([]byte(nil), stream...)
			dc, err := parseContainer(damaged)
			if err != nil {
				t.Fatal(err)
			}
			dc.payloads[0][0] ^= 0xff
			dc.payloads[0][1] ^= 0xff
			if _, dmgOwned := mustOwned(t, damaged); dmgOwned[0] {
				t.Fatal("corruption did not unseat chunk 0")
			}

			// Intact copy wins regardless of argument order.
			for _, pair := range [][2][]byte{{damaged, stream}, {stream, damaged}} {
				m, err := MergeShards(pair[0], pair[1])
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(m, stream) {
					t.Fatal("merge with an intact replica did not heal the damaged frame")
				}
			}

			// Damaged in both inputs: the chunk degrades to a stub (leaves
			// the owned set) instead of poisoning the merge.
			m, err := MergeShards(damaged, damaged)
			if err != nil {
				t.Fatal(err)
			}
			owned, set := mustOwned(t, m)
			if set[0] {
				t.Fatalf("chunk 0 still owned after merging two damaged copies (owned %v)", owned)
			}
			for i := 1; i < len(c.chunks); i++ {
				if !set[i] {
					t.Fatalf("merge lost intact chunk %d", i)
				}
			}
		})
	}
}

func TestMergeShardsRefusesForeignShards(t *testing.T) {
	a := readFixtureFile(t, sliceFixtures[0].path)
	b := readFixtureFile(t, sliceFixtures[1].path)
	if _, err := MergeShards(a, b); err == nil {
		t.Fatal("shards of different volumes merged")
	}
}

func mustOwned(t *testing.T, shard []byte) ([]int, map[int]bool) {
	t.Helper()
	owned, err := OwnedChunks(shard)
	if err != nil {
		t.Fatal(err)
	}
	set := make(map[int]bool, len(owned))
	for _, ci := range owned {
		set[ci] = true
	}
	return owned, set
}
