package chunk

// Shard merging for the replicated cluster layer: when a peer receives a
// second shard of a volume it already holds — a replicated re-ingest, an
// anti-entropy repair response, or the fan-in of a rejoining node — the
// two shards must converge to one container holding the union of their
// real frames. Merging is frame-granular and byte-exact: a frame is
// taken verbatim from whichever input carries it intact, so a merged
// chunk decodes bit-identically to the original container no matter how
// many merges it has been through. Damage never survives a merge with a
// clean replica — a frame that fails its checksum loses to an intact
// copy of the same chunk, which is exactly the self-healing property the
// scrubber relies on.

import (
	"encoding/binary"
	"fmt"
)

// frameState classifies one chunk's frame within a shard being merged.
type frameState int

const (
	frameStub    frameState = iota // deliberate slicing stub
	frameIntact                    // real payload, checksum verified
	frameDamaged                   // real-length payload failing its checksum
)

// classifyFrame decides what chunk i's frame contributes to a merge.
func classifyFrame(c *container, i int) frameState {
	p := c.payloads[i]
	if len(p) <= StubFrameMaxLen {
		return frameStub
	}
	if frameCRC(p) != c.crcs[i] {
		return frameDamaged
	}
	return frameIntact
}

// MergeShards combines two shards of the same volume into one container
// holding, for each chunk, the first intact frame found in (a, b) order;
// chunks intact in neither input stay (or become) stubs. Both inputs
// must be v2+ containers describing the same geometry, version, and
// codec map — shards of different volumes, or of the same volume under
// different contracts, refuse to merge. Merging a shard with itself, or
// with a subset of itself, reproduces it byte for byte.
//
// A damaged frame (real length, bad checksum) is tolerated in either
// input: it simply loses to an intact copy from the other side, and
// degrades to a stub when no intact copy exists — the chunk then leaves
// the owned set rather than poisoning it, and the anti-entropy scrubber
// re-fetches it from a replica that still has it.
func MergeShards(a, b []byte) ([]byte, error) {
	ca, err := parseContainer(a)
	if err != nil {
		return nil, fmt.Errorf("merge: first shard: %w", err)
	}
	cb, err := parseContainer(b)
	if err != nil {
		return nil, fmt.Errorf("merge: second shard: %w", err)
	}
	if ca.version < 2 || cb.version < 2 {
		return nil, fmt.Errorf("chunk: cannot merge v1 containers (no index footer)")
	}
	if ca.version != cb.version || ca.volDims != cb.volDims ||
		ca.chunkDims != cb.chunkDims || len(ca.chunks) != len(cb.chunks) {
		return nil, fmt.Errorf("%w: shards describe different volumes (v%d %v/%v vs v%d %v/%v)",
			ErrCorrupt, ca.version, ca.volDims, ca.chunkDims, cb.version, cb.volDims, cb.chunkDims)
	}
	for i := range ca.codecs {
		if ca.codecs[i] != cb.codecs[i] {
			return nil, fmt.Errorf("%w: shards disagree on chunk %d codec (%d vs %d)",
				ErrCorrupt, i, ca.codecs[i], cb.codecs[i])
		}
	}

	magic := magicV2
	if ca.version >= 3 {
		magic = magicV3
	}
	// Pick each chunk's source, then size and build exactly like SliceShard.
	pick := make([]*container, len(ca.chunks))
	for i := range ca.chunks {
		switch {
		case classifyFrame(ca, i) == frameIntact:
			pick[i] = ca
		case classifyFrame(cb, i) == frameIntact:
			pick[i] = cb
		default:
			pick[i] = nil // stub
		}
	}
	size := fixedHeaderSize + indexSizeFor(ca.version, len(ca.chunks))
	for i := range ca.chunks {
		size += frameOverheadV2
		if pick[i] != nil {
			size += len(pick[i].payloads[i])
		} else if ca.version >= 3 {
			size += StubFrameMaxLen
		}
	}
	out := appendFixedHeader(make([]byte, 0, size), magic, ca.volDims, ca.chunkDims, len(ca.chunks))
	entries := make([]indexEntry, len(ca.chunks))
	for i := range ca.chunks {
		var payload []byte
		var crc uint32
		if src := pick[i]; src != nil {
			payload = src.payloads[i]
			crc = src.crcs[i]
		} else {
			// The codec map survives the footer round trip, so a v3 stub can
			// always be synthesized from it even when both inputs' frames for
			// this chunk are damaged beyond carrying a trustworthy tag byte.
			if ca.version >= 3 {
				payload = []byte{byte(ca.codecs[i])}
			}
			crc = frameCRC(payload)
		}
		entries[i] = indexEntry{offset: uint64(len(out)), length: uint32(len(payload)), crc: crc}
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc)
	}
	return appendIndex(out, ca.version, entries, ca.codecs, ca.agg, uint64(len(out))), nil
}

// OwnedChunks scans a v2+ container and returns the sorted indices of
// the chunks whose frames are real and intact — the shard's owned set as
// evidenced by the bytes themselves, not a manifest. Damaged frames and
// stubs are both excluded.
func OwnedChunks(shard []byte) ([]int, error) {
	c, err := parseContainer(shard)
	if err != nil {
		return nil, err
	}
	if c.version < 2 {
		return nil, fmt.Errorf("chunk: v1 containers carry no ownership evidence")
	}
	owned := make([]int, 0, len(c.chunks))
	for i := range c.chunks {
		if classifyFrame(c, i) == frameIntact {
			owned = append(owned, i)
		}
	}
	return owned, nil
}
