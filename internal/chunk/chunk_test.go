package chunk

import (
	"math"
	"math/rand"
	"testing"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

func testVolume(d grid.Dims, seed int64) *grid.Volume {
	rng := rand.New(rand.NewSource(seed))
	v := grid.NewVolume(d)
	for z := 0; z < d.NZ; z++ {
		for y := 0; y < d.NY; y++ {
			for x := 0; x < d.NX; x++ {
				v.Set(x, y, z, 10*math.Sin(0.2*float64(x))*math.Cos(0.15*float64(y))*
					math.Sin(0.1*float64(z)+0.5)+0.05*rng.NormFloat64())
			}
		}
	}
	return v
}

func maxAbsErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestRoundTripSingleChunk(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 1)
	stream, st, err := Compress(v, Options{
		Params: codec.Params{Mode: codec.ModePWE, Tol: 0.01},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Chunks) != 1 {
		t.Fatalf("expected 1 chunk, got %d", len(st.Chunks))
	}
	got, err := Decompress(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(v.Data, got.Data); e > 0.01*(1+1e-9) {
		t.Fatalf("max error %g > tol", e)
	}
}

func TestRoundTripMultiChunk(t *testing.T) {
	// 48^3 volume with 20^3 chunks: 3x3x3 = 27 chunks with remainders.
	v := testVolume(grid.D3(48, 48, 48), 2)
	tol := 0.02
	stream, st, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: tol},
		ChunkDims: grid.D3(20, 20, 20),
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Chunks) != 27 {
		t.Fatalf("expected 27 chunks, got %d", len(st.Chunks))
	}
	got, err := Decompress(stream, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dims != v.Dims {
		t.Fatalf("dims %v, want %v", got.Dims, v.Dims)
	}
	if e := maxAbsErr(v.Data, got.Data); e > tol*(1+1e-9) {
		t.Fatalf("max error %g > tol %g", e, tol)
	}
}

// Chunked and unchunked compression must both satisfy the tolerance; the
// reconstruction may differ but the guarantee cannot.
func TestChunkedVsUnchunkedGuarantee(t *testing.T) {
	v := testVolume(grid.D3(40, 40, 40), 3)
	tol := 0.005
	for _, cd := range []grid.Dims{{NX: 40, NY: 40, NZ: 40}, {NX: 16, NY: 16, NZ: 16}, {NX: 40, NY: 40, NZ: 8}} {
		stream, _, err := Compress(v, Options{
			Params:    codec.Params{Mode: codec.ModePWE, Tol: tol},
			ChunkDims: cd,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decompress(stream, 0)
		if err != nil {
			t.Fatal(err)
		}
		if e := maxAbsErr(v.Data, got.Data); e > tol*(1+1e-9) {
			t.Fatalf("chunk %v: max error %g > tol", cd, e)
		}
	}
}

// Worker count must not change the output (determinism).
func TestWorkerCountDeterminism(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 16), 4)
	opts := func(w int) Options {
		return Options{
			Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.01},
			ChunkDims: grid.D3(16, 16, 16),
			Workers:   w,
		}
	}
	s1, _, err := Compress(v, opts(1))
	if err != nil {
		t.Fatal(err)
	}
	s4, _, err := Compress(v, opts(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(s1) != len(s4) {
		t.Fatalf("stream lengths differ: %d vs %d", len(s1), len(s4))
	}
	for i := range s1 {
		if s1[i] != s4[i] {
			t.Fatalf("streams differ at byte %d", i)
		}
	}
}

func TestBPPModeChunked(t *testing.T) {
	v := testVolume(grid.D3(32, 32, 32), 5)
	bpp := 2.0
	stream, st, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModeBPP, BitsPerPoint: bpp},
		ChunkDims: grid.D3(16, 16, 16),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := st.BPP(); got > bpp*1.2+0.5 {
		t.Errorf("achieved %g BPP for target %g", got, bpp)
	}
	if _, err := Decompress(stream, 0); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptContainer(t *testing.T) {
	if _, err := Decompress(nil, 0); err == nil {
		t.Error("nil stream should fail")
	}
	if _, err := Decompress([]byte("not a container at all....."), 0); err == nil {
		t.Error("bad magic should fail")
	}
	v := testVolume(grid.D3(16, 16, 16), 6)
	stream, _, err := Compress(v, Options{Params: codec.Params{Mode: codec.ModePWE, Tol: 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Decompress(stream[:len(stream)/2], 0); err == nil {
		t.Error("truncated container should fail")
	}
}

func Test2DVolume(t *testing.T) {
	v := testVolume(grid.D2(64, 64), 7)
	stream, _, err := Compress(v, Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.01},
		ChunkDims: grid.D3(32, 32, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decompress(stream, 0)
	if err != nil {
		t.Fatal(err)
	}
	if e := maxAbsErr(v.Data, got.Data); e > 0.01*(1+1e-9) {
		t.Fatalf("max error %g", e)
	}
}

func TestSplitChunksGeometry(t *testing.T) {
	chunks := grid.SplitChunks(grid.D3(10, 10, 10), grid.D3(4, 4, 4))
	if len(chunks) != 27 {
		t.Fatalf("10^3 / 4^3 should give 27 chunks, got %d", len(chunks))
	}
	var pts int
	for _, c := range chunks {
		pts += c.Dims.Len()
	}
	if pts != 1000 {
		t.Fatalf("chunks cover %d points, want 1000", pts)
	}
}

func BenchmarkCompressChunked(b *testing.B) {
	v := testVolume(grid.D3(48, 48, 48), 1)
	opts := Options{
		Params:    codec.Params{Mode: codec.ModePWE, Tol: 0.01},
		ChunkDims: grid.D3(24, 24, 24),
	}
	b.SetBytes(int64(v.Dims.Len() * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Compress(v, opts); err != nil {
			b.Fatal(err)
		}
	}
}
