package chunk

import (
	"encoding/binary"
	"fmt"

	"sperr/internal/grid"
)

// container is a parsed SPERR-Go container stream.
type container struct {
	volDims   grid.Dims
	chunkDims grid.Dims
	chunks    []grid.Chunk
	payloads  [][]byte // one compressed stream per chunk, aliasing the input
}

// parseContainer validates and indexes a container stream without
// decoding any chunk payloads.
func parseContainer(stream []byte) (*container, error) {
	const fixed = 8 + 4*7
	if len(stream) < fixed {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	for i := range magic {
		if stream[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(stream[off:])) }
	c := &container{
		volDims:   grid.Dims{NX: u32(8), NY: u32(12), NZ: u32(16)},
		chunkDims: grid.Dims{NX: u32(20), NY: u32(24), NZ: u32(28)},
	}
	nchunks := u32(32)
	if !c.volDims.Valid() || !c.chunkDims.Valid() {
		return nil, fmt.Errorf("%w: invalid dims %v / %v", ErrCorrupt, c.volDims, c.chunkDims)
	}
	c.chunks = grid.SplitChunks(c.volDims, c.chunkDims)
	if len(c.chunks) != nchunks {
		return nil, fmt.Errorf("%w: chunk count %d does not match geometry (%d)",
			ErrCorrupt, nchunks, len(c.chunks))
	}
	c.payloads = make([][]byte, nchunks)
	off := fixed
	for i := 0; i < nchunks; i++ {
		if off+4 > len(stream) {
			return nil, fmt.Errorf("%w: truncated at chunk %d", ErrCorrupt, i)
		}
		n := u32(off)
		off += 4
		if off+n > len(stream) {
			return nil, fmt.Errorf("%w: chunk %d payload truncated", ErrCorrupt, i)
		}
		c.payloads[i] = stream[off : off+n]
		off += n
	}
	return c, nil
}
