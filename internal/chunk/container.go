package chunk

import (
	"encoding/binary"
	"fmt"

	"sperr/internal/codec"
	"sperr/internal/grid"
)

// container is a parsed SPERR-Go container stream (format v1, v2, or v3).
// For v2+, payload checksums are deferred to payload(): parse walks only
// the header and index footer, so random-access consumers (Describe,
// DecompressRegion) never touch the frames they skip.
type container struct {
	version   int
	volDims   grid.Dims
	chunkDims grid.Dims
	chunks    []grid.Chunk
	payloads  [][]byte          // one compressed stream per chunk, aliasing the input
	crcs      []uint32          // v2+: expected payload crc32c, verified lazily
	codecs    []codec.CodecID   // v3: per-chunk codec map from the footer
	agg       aggregates
	hasAgg    bool
}

// MaxDecodePoints, when positive, bounds the number of points a container
// may declare before any decode-side allocation happens — a guard when
// feeding untrusted streams to Decompress (the fuzz harness sets it).
// Zero means unlimited. Set it once, before concurrent use.
var MaxDecodePoints int

// mulOK returns a*b and whether the product fits an int without overflow.
// All operands are non-negative.
func mulOK(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// validateGeometry checks a container's declared geometry arithmetically
// before any geometry-sized allocation happens: a corrupt header must not
// be able to provoke a huge or overflowing make(). It returns the chunk
// split on success.
func validateGeometry(volDims, chunkDims grid.Dims, nchunks int) ([]grid.Chunk, error) {
	if !volDims.Valid() || !chunkDims.Valid() {
		return nil, fmt.Errorf("%w: invalid dims %v / %v", ErrCorrupt, volDims, chunkDims)
	}
	xy, ok1 := mulOK(volDims.NX, volDims.NY)
	points, ok2 := mulOK(xy, volDims.NZ)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: volume dims %v overflow", ErrCorrupt, volDims)
	}
	if MaxDecodePoints > 0 && points > MaxDecodePoints {
		return nil, fmt.Errorf("%w: volume of %d points exceeds decode cap %d",
			ErrCorrupt, points, MaxDecodePoints)
	}
	cxy, ok1 := mulOK(ceilDiv(volDims.NX, chunkDims.NX), ceilDiv(volDims.NY, chunkDims.NY))
	want, ok2 := mulOK(cxy, ceilDiv(volDims.NZ, chunkDims.NZ))
	if !ok1 || !ok2 || want != nchunks {
		return nil, fmt.Errorf("%w: chunk count %d does not match geometry (%d)",
			ErrCorrupt, nchunks, want)
	}
	return grid.SplitChunks(volDims, chunkDims), nil
}

// parseFixedHeader decodes and validates the 36-byte fixed header shared
// by v1 and v2, returning the declared geometry and the chunk split. It is
// the common entry of the strict parser (parseContainer) and the salvage
// path, which must keep going on streams whose frame region is damaged.
func parseFixedHeader(stream []byte) (version int, volDims, chunkDims grid.Dims, chunks []grid.Chunk, err error) {
	if len(stream) < fixedHeaderSize {
		return 0, volDims, chunkDims, nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	switch {
	case [8]byte(stream[:8]) == magicV1:
		version = 1
	case [8]byte(stream[:8]) == magicV2:
		version = 2
	case [8]byte(stream[:8]) == magicV3:
		version = 3
	default:
		return 0, volDims, chunkDims, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(stream[off:])) }
	volDims = grid.Dims{NX: u32(8), NY: u32(12), NZ: u32(16)}
	chunkDims = grid.Dims{NX: u32(20), NY: u32(24), NZ: u32(28)}
	chunks, err = validateGeometry(volDims, chunkDims, u32(32))
	if err != nil {
		return 0, volDims, chunkDims, nil, err
	}
	return version, volDims, chunkDims, chunks, nil
}

// parseContainer validates and indexes a container stream without
// decoding (or, for v2, even checksumming) any chunk payloads.
func parseContainer(stream []byte) (*container, error) {
	if len(stream) < fixedHeaderSize {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	// Every chunk costs at least a 4-byte length prefix, so the declared
	// chunk count is bounded by the bytes that remain — checked before
	// validateGeometry's products so a lying count cannot size the chunk
	// slice either.
	nchunks := int(binary.LittleEndian.Uint32(stream[32:]))
	if nchunks > (len(stream)-fixedHeaderSize)/4 {
		return nil, fmt.Errorf("%w: chunk count %d exceeds stream capacity", ErrCorrupt, nchunks)
	}
	version, volDims, chunkDims, chunks, err := parseFixedHeader(stream)
	if err != nil {
		return nil, err
	}
	c := &container{version: version, volDims: volDims, chunkDims: chunkDims, chunks: chunks}
	if c.version >= 2 {
		return c, c.parseV2(stream, nchunks)
	}
	c.payloads = make([][]byte, nchunks)
	off := fixedHeaderSize
	for i := 0; i < nchunks; i++ {
		if off+4 > len(stream) {
			return nil, fmt.Errorf("%w: truncated at chunk %d", ErrCorrupt, i)
		}
		n := int(binary.LittleEndian.Uint32(stream[off:]))
		off += 4
		if n < 0 || off+n > len(stream) {
			return nil, fmt.Errorf("%w: chunk %d payload truncated", ErrCorrupt, i)
		}
		c.payloads[i] = stream[off : off+n]
		off += n
	}
	return c, nil
}

// parseV2 indexes a v2/v3 stream from its footer alone: the frames are
// located by the index entries, not by walking length prefixes, so this
// is O(nchunks) in the footer and touches no frame bytes.
func (c *container) parseV2(stream []byte, nchunks int) error {
	idxOff, err := locateIndex(stream, c.version)
	if err != nil {
		return err
	}
	entries, codecs, agg, err := parseIndex(stream[idxOff:], c.version, nchunks, idxOff, len(stream))
	if err != nil {
		return err
	}
	c.agg, c.hasAgg = agg, true
	c.codecs = codecs
	c.payloads = make([][]byte, nchunks)
	c.crcs = make([]uint32, nchunks)
	for i, e := range entries {
		// parseIndex proved offset+4+length+4 <= indexOffset <= len(stream).
		start := int(e.offset) + 4
		c.payloads[i] = stream[start : start+int(e.length)]
		c.crcs[i] = e.crc
	}
	return nil
}

// payload returns chunk i's compressed stream, verifying its checksum
// first on v2+ containers. Verification happens here — at access time —
// rather than at parse time, so consumers pay only for the frames they
// actually open. On v3 the returned bytes include the leading codec tag.
func (c *container) payload(i int) ([]byte, error) {
	p := c.payloads[i]
	if c.crcs != nil {
		if got := frameCRC(p); got != c.crcs[i] {
			return nil, fmt.Errorf("%w: chunk %d checksum mismatch", ErrCorrupt, i)
		}
	}
	return p, nil
}

// decodeTaggedPayload decodes a v3 frame payload — codec tag byte plus
// backend stream — dispatching on the tag. A tag outside the registry
// fails as ErrCorrupt; it must never fall through to some backend's
// decoder.
func decodeTaggedPayload(payload []byte, dims grid.Dims, s *codec.Scratch, threads int) ([]float64, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty frame payload", ErrCorrupt)
	}
	b, ok := codec.Lookup(codec.CodecID(payload[0]))
	if !ok {
		return nil, fmt.Errorf("%w: unknown codec tag %d", ErrCorrupt, payload[0])
	}
	data, err := b.Decode(payload[1:], dims, s, threads)
	if err != nil {
		// A CRC-valid frame whose tagged backend rejects the stream is
		// corruption evidence (e.g. a consistently forged tag): surface it
		// under the container's error identity, keeping the backend's too.
		return nil, fmt.Errorf("%w: codec %s: %w", ErrCorrupt, b.Name(), err)
	}
	return data, nil
}

// decodeChunk decodes chunk i of the container with the version-correct
// dispatch: pre-v3 payloads are SPERR streams; v3 payloads carry a codec
// tag that must also agree with the footer's codec map.
func (c *container) decodeChunk(i int, dims grid.Dims, s *codec.Scratch, threads int) ([]float64, error) {
	payload, err := c.payload(i)
	if err != nil {
		return nil, err
	}
	if c.version < 3 {
		return codec.DecodeChunkScratchThreads(payload, dims, s, threads)
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: chunk %d frame empty", ErrCorrupt, i)
	}
	if c.codecs != nil && codec.CodecID(payload[0]) != c.codecs[i] {
		return nil, fmt.Errorf("%w: chunk %d frame tag %d disagrees with index codec %d",
			ErrCorrupt, i, payload[0], c.codecs[i])
	}
	return decodeTaggedPayload(payload, dims, s, threads)
}

// sperrPayload returns chunk i's SPERR stream for the progressive-access
// paths (partial and low-resolution decode), which are SPERR-specific: on
// a v3 container the chunk must be SPERR-coded and the tag is stripped.
func (c *container) sperrPayload(i int) ([]byte, error) {
	payload, err := c.payload(i)
	if err != nil {
		return nil, err
	}
	if c.version < 3 {
		return payload, nil
	}
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: chunk %d frame empty", ErrCorrupt, i)
	}
	if id := codec.CodecID(payload[0]); id != codec.CodecSPERR {
		return nil, fmt.Errorf("chunk: progressive access requires SPERR-coded chunks; chunk %d is %s", i, id)
	}
	return payload[1:], nil
}
