package chunk

import (
	"encoding/binary"
	"fmt"

	"sperr/internal/grid"
)

// container is a parsed SPERR-Go container stream.
type container struct {
	volDims   grid.Dims
	chunkDims grid.Dims
	chunks    []grid.Chunk
	payloads  [][]byte // one compressed stream per chunk, aliasing the input
}

// MaxDecodePoints, when positive, bounds the number of points a container
// may declare before any decode-side allocation happens — a guard when
// feeding untrusted streams to Decompress (the fuzz harness sets it).
// Zero means unlimited. Set it once, before concurrent use.
var MaxDecodePoints int

// mulOK returns a*b and whether the product fits an int without overflow.
// All operands are non-negative.
func mulOK(a, b int) (int, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	if p/a != b {
		return 0, false
	}
	return p, true
}

// ceilDiv returns ceil(a/b) for positive a, b.
func ceilDiv(a, b int) int { return (a + b - 1) / b }

// parseContainer validates and indexes a container stream without
// decoding any chunk payloads.
func parseContainer(stream []byte) (*container, error) {
	const fixed = 8 + 4*7
	if len(stream) < fixed {
		return nil, fmt.Errorf("%w: short header", ErrCorrupt)
	}
	for i := range magic {
		if stream[i] != magic[i] {
			return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
		}
	}
	u32 := func(off int) int { return int(binary.LittleEndian.Uint32(stream[off:])) }
	c := &container{
		volDims:   grid.Dims{NX: u32(8), NY: u32(12), NZ: u32(16)},
		chunkDims: grid.Dims{NX: u32(20), NY: u32(24), NZ: u32(28)},
	}
	nchunks := u32(32)
	if !c.volDims.Valid() || !c.chunkDims.Valid() {
		return nil, fmt.Errorf("%w: invalid dims %v / %v", ErrCorrupt, c.volDims, c.chunkDims)
	}
	// Validate the declared geometry arithmetically before any
	// geometry-sized allocation: a corrupt header must not be able to
	// provoke a huge or overflowing make(). Every chunk costs at least a
	// 4-byte length prefix, so nchunks is bounded by the bytes that
	// remain; the chunk-grid product is checked for overflow; the volume
	// point count is checked for overflow (and the optional decode cap).
	if nchunks > (len(stream)-fixed)/4 {
		return nil, fmt.Errorf("%w: chunk count %d exceeds stream capacity", ErrCorrupt, nchunks)
	}
	xy, ok1 := mulOK(c.volDims.NX, c.volDims.NY)
	points, ok2 := mulOK(xy, c.volDims.NZ)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("%w: volume dims %v overflow", ErrCorrupt, c.volDims)
	}
	if MaxDecodePoints > 0 && points > MaxDecodePoints {
		return nil, fmt.Errorf("%w: volume of %d points exceeds decode cap %d",
			ErrCorrupt, points, MaxDecodePoints)
	}
	cxy, ok1 := mulOK(ceilDiv(c.volDims.NX, c.chunkDims.NX), ceilDiv(c.volDims.NY, c.chunkDims.NY))
	want, ok2 := mulOK(cxy, ceilDiv(c.volDims.NZ, c.chunkDims.NZ))
	if !ok1 || !ok2 || want != nchunks {
		return nil, fmt.Errorf("%w: chunk count %d does not match geometry (%d)",
			ErrCorrupt, nchunks, want)
	}
	c.chunks = grid.SplitChunks(c.volDims, c.chunkDims)
	c.payloads = make([][]byte, nchunks)
	off := fixed
	for i := 0; i < nchunks; i++ {
		if off+4 > len(stream) {
			return nil, fmt.Errorf("%w: truncated at chunk %d", ErrCorrupt, i)
		}
		n := u32(off)
		off += 4
		if off+n > len(stream) {
			return nil, fmt.Errorf("%w: chunk %d payload truncated", ErrCorrupt, i)
		}
		c.payloads[i] = stream[off : off+n]
		off += n
	}
	return c, nil
}
