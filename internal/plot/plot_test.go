package plot

import (
	"math"
	"strings"
	"testing"
)

func TestLinesBasic(t *testing.T) {
	s := []Series{
		{Name: "up", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}},
		{Name: "down", X: []float64{0, 1, 2, 3}, Y: []float64{3, 2, 1, 0}},
	}
	out := Lines("demo", "x", "y", s, 40, 10)
	for _, want := range []string{"demo", "up", "down", "*", "o", "x", "y"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 12 {
		t.Errorf("too few lines: %d", len(lines))
	}
}

func TestLinesPlacesExtremes(t *testing.T) {
	s := []Series{{Name: "v", X: []float64{0, 1}, Y: []float64{0, 10}}}
	out := Lines("t", "x", "y", s, 20, 8)
	rows := strings.Split(out, "\n")
	// The max label appears on the top plot row, min on the bottom.
	if !strings.Contains(out, "10") || !strings.Contains(out, "0") {
		t.Errorf("axis labels missing:\n%s", out)
	}
	var topRow, botRow string
	for _, r := range rows {
		if strings.Contains(r, "|") {
			if topRow == "" {
				topRow = r
			}
			botRow = r
		}
	}
	if !strings.Contains(topRow, "*") {
		t.Errorf("max point not on top row:\n%s", out)
	}
	if !strings.Contains(botRow, "*") {
		t.Errorf("min point not on bottom row:\n%s", out)
	}
}

func TestLinesEmptyAndNaN(t *testing.T) {
	if out := Lines("t", "x", "y", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty series: %q", out)
	}
	s := []Series{{Name: "n", X: []float64{math.NaN()}, Y: []float64{1}}}
	if out := Lines("t", "x", "y", s, 40, 10); !strings.Contains(out, "no data") {
		t.Errorf("all-NaN series should have no data: %q", out)
	}
	// Constant series must not divide by zero.
	c := []Series{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}}
	out := Lines("t", "x", "y", c, 40, 10)
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}

func TestBars(t *testing.T) {
	out := Bars("sizes", []string{"a", "bb"}, []float64{1, 2}, 20)
	for _, want := range []string{"sizes", "a ", "bb", "="} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
	// The larger bar must be longer.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	if strings.Count(rows[2], "=") <= strings.Count(rows[1], "=") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
}

func TestRaster(t *testing.T) {
	nx, ny := 16, 8
	mask := make([]bool, nx*ny)
	mask[0] = true       // top-left
	mask[ny*nx-1] = true // bottom-right
	mask[3*nx+8] = true  // middle
	out := Raster("dots", mask, nx, ny, 16, 8)
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 9 { // title + 8 rows
		t.Fatalf("rows = %d:\n%s", len(rows), out)
	}
	if !strings.Contains(rows[1], "#") || !strings.HasPrefix(strings.TrimSpace(rows[1]), "#") {
		t.Errorf("top-left dot missing:\n%s", out)
	}
	last := rows[len(rows)-1]
	if !strings.HasSuffix(strings.TrimSpace(last), "#") {
		t.Errorf("bottom-right dot missing:\n%s", out)
	}
	if got := strings.Count(out, "#"); got != 3 {
		t.Errorf("expected 3 marked cells, got %d:\n%s", got, out)
	}
}

func TestRasterDownsamples(t *testing.T) {
	nx, ny := 100, 60
	mask := make([]bool, nx*ny)
	for i := range mask {
		mask[i] = true
	}
	out := Raster("full", mask, nx, ny, 20, 10)
	rows := strings.Split(strings.TrimSpace(out), "\n")
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows[1:] {
		if strings.Contains(r, ".") {
			t.Fatalf("full mask should have no empty cells:\n%s", out)
		}
	}
	if out := Raster("bad", nil, 4, 4, 8, 8); !strings.Contains(out, "no data") {
		t.Errorf("mismatched mask: %q", out)
	}
}

func TestBarsDegenerate(t *testing.T) {
	if out := Bars("t", nil, nil, 10); !strings.Contains(out, "no data") {
		t.Errorf("empty bars: %q", out)
	}
	if out := Bars("t", []string{"a"}, []float64{0}, 10); !strings.Contains(out, "a") {
		t.Errorf("zero bars: %q", out)
	}
	out := Bars("t", []string{"a"}, []float64{math.Inf(1)}, 10)
	if strings.Contains(out, strings.Repeat("=", 100)) {
		t.Errorf("infinite bar rendered: %q", out)
	}
}
