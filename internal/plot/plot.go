// Package plot renders small ASCII line and bar charts for the experiment
// runner, so the reproduced figures can be eyeballed in a terminal the way
// the paper's figures are eyeballed on the page (U-shaped cost curves,
// rate-distortion curves, bitrate bars).
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named line of (X, Y) points.
type Series struct {
	Name string
	X, Y []float64
}

// markers distinguish up to eight series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Lines renders the series into a width x height character grid with
// axis annotations and a legend. X values need not be sorted or shared
// across series. Invalid sizes or empty series render a short message
// instead of panicking.
func Lines(title, xlabel, ylabel string, series []Series, width, height int) string {
	if width < 20 {
		width = 60
	}
	if height < 5 {
		height = 16
	}
	var pts int
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			pts++
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if pts == 0 {
		return title + ": no data\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			if i >= len(s.Y) || !finite(s.X[i]) || !finite(s.Y[i]) {
				continue
			}
			c := int(math.Round((s.X[i] - minX) / (maxX - minX) * float64(width-1)))
			r := height - 1 - int(math.Round((s.Y[i]-minY)/(maxY-minY)*float64(height-1)))
			if c >= 0 && c < width && r >= 0 && r < height {
				grid[r][c] = m
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%s\n", ylabel)
	yTop := fmt.Sprintf("%.4g", maxY)
	yBot := fmt.Sprintf("%.4g", minY)
	margin := len(yTop)
	if len(yBot) > margin {
		margin = len(yBot)
	}
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", margin)
		switch r {
		case 0:
			label = fmt.Sprintf("%*s", margin, yTop)
		case height - 1:
			label = fmt.Sprintf("%*s", margin, yBot)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(grid[r]))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", margin), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*s%s\n", strings.Repeat(" ", margin),
		width-len(fmt.Sprintf("%.4g", maxX)), fmt.Sprintf("%.4g", minX), fmt.Sprintf("%.4g", maxX))
	fmt.Fprintf(&b, "%s  %s\n", strings.Repeat(" ", margin), xlabel)
	for si, s := range series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

// Bars renders one bar per label, scaled to the maximum value.
func Bars(title string, labels []string, values []float64, width int) string {
	if width < 10 {
		width = 40
	}
	if len(labels) != len(values) || len(labels) == 0 {
		return title + ": no data\n"
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range values {
		if finite(v) && v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxLabel {
			maxLabel = len(labels[i])
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for i, v := range values {
		n := 0
		if finite(v) {
			n = int(math.Round(v / maxV * float64(width)))
		}
		fmt.Fprintf(&b, "  %-*s |%s %.4g\n", maxLabel, labels[i], strings.Repeat("=", n), v)
	}
	return b.String()
}

// Raster renders a 2D boolean mask (row-major, nx fastest) as a character
// bitmap of at most width x height cells, marking any cell containing at
// least one set point. Used to eyeball outlier position maps the way the
// paper's Figure 1 does.
func Raster(title string, mask []bool, nx, ny, width, height int) string {
	if nx <= 0 || ny <= 0 || len(mask) != nx*ny {
		return title + ": no data\n"
	}
	if width < 8 {
		width = 64
	}
	if height < 4 {
		height = 24
	}
	if width > nx {
		width = nx
	}
	if height > ny {
		height = ny
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r := 0; r < height; r++ {
		y0 := r * ny / height
		y1 := (r + 1) * ny / height
		row := make([]byte, width)
		for c := 0; c < width; c++ {
			x0 := c * nx / width
			x1 := (c + 1) * nx / width
			row[c] = '.'
		cell:
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					if mask[y*nx+x] {
						row[c] = '#'
						break cell
					}
				}
			}
		}
		fmt.Fprintf(&b, "  %s\n", string(row))
	}
	return b.String()
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
