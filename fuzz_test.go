package sperr

// Native Go fuzz targets. `go test` runs the seed corpus as regular tests;
// `go test -fuzz=FuzzDecompress` explores further. The invariant under
// test: no input, however malformed, may panic a decoder — it must return
// an error or (for bit-level damage past the headers) garbage data of the
// declared shape.

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"sperr/internal/chunk"
)

// fuzzDecodeCap bounds how many points a fuzzed container may declare, so
// a handful of corrupt header bytes cannot demand gigabytes ("no
// over-allocation" invariant). Real streams this small never reach it.
const fuzzDecodeCap = 1 << 22

func FuzzDecompress(f *testing.F) {
	// Seed with valid single- and multi-chunk streams plus systematic
	// damage: truncations at layer boundaries, bit flips in the container
	// header, the chunk length table, and the payloads.
	data := demoField(8, 8, 8, 99)
	stream, _, err := CompressPWE(data, [3]int{8, 8, 8}, 0.1, nil)
	if err != nil {
		f.Fatal(err)
	}
	multiData := demoField(20, 13, 9, 5)
	multi, _, err := CompressPWE(multiData, [3]int{20, 13, 9}, 1e-3, &Options{
		ChunkDims: [3]int{8, 8, 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(stream)
	f.Add(multi)
	// Integer bit-plane SPECK coverage: a tight tolerance drives the plane
	// count deep (near the 52-plane eligibility edge), and a BPP-mode
	// stream exercises mid-plane truncation of the integer path's output.
	deep, _, err := CompressPWE(multiData, [3]int{20, 13, 9}, 1e-9, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(deep)
	bpp, _, err := CompressBPP(multiData, [3]int{20, 13, 9}, 2, nil)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(bpp)
	// SPECK-AC coverage: an arith-coded container, truncated arith tails
	// (the range decoder must treat byte exhaustion as stream end, not
	// read past it), and flips in the chunk-header region where the
	// entropy-mode byte lives (a forged mode must fail as ErrCorrupt).
	ac, _, err := CompressPWE(multiData, [3]int{20, 13, 9}, 1e-4, &Options{Entropy: true})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ac)
	for _, cut := range []int{len(ac) - 1, len(ac) - 3, len(ac) * 3 / 4, len(ac) / 2} {
		if cut > 0 && cut < len(ac) {
			f.Add(ac[:cut])
		}
	}
	for _, pos := range []int{40, 41, 42, 43, 44, len(ac) / 2, len(ac) - 5} {
		if pos >= 0 && pos < len(ac) {
			mut := append([]byte(nil), ac...)
			mut[pos] ^= 0x03
			f.Add(mut)
		}
	}
	if len(deep) > 50 {
		f.Add(deep[:len(deep)/3])
		trunc := append([]byte(nil), deep...)
		trunc[len(trunc)-7] ^= 0x42
		f.Add(trunc)
	}
	// Container-v3 coverage: a mixed-codec adaptive stream, forged codec
	// tags (in-range and out-of-range, with and without the index map
	// agreeing), and cuts at the tag byte. All must fail as ErrCorrupt or
	// decode clean — never panic, never mis-dispatch to a wrong backend.
	adata := demoField(20, 13, 9, 6)
	av3, _, err := CompressAdaptive(adata, [3]int{20, 13, 9}, 1e-3, &Options{
		ChunkDims: [3]int{8, 8, 8},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(av3)
	for _, pos := range []int{40, 41, len(av3) / 2, len(av3) - 30} {
		if pos >= 0 && pos < len(av3) {
			mut := append([]byte(nil), av3...)
			mut[pos] ^= 0x07 // lands on/near a codec tag or index codec map byte
			f.Add(mut)
		}
	}
	for _, cut := range []int{41, len(av3) / 3, len(av3) - 21, len(av3) - 1} {
		if cut > 0 && cut < len(av3) {
			f.Add(av3[:cut])
		}
	}
	if v3, err := os.ReadFile(filepath.Join("testdata", "golden_adaptive_48x32x32_v3.sperr")); err == nil {
		f.Add(v3)
		f.Add(v3[:len(v3)/2])
		// Flip the first frame's codec tag (offset 40: header 36 + length
		// prefix 4) without repairing the CRC.
		mut := append([]byte(nil), v3...)
		mut[40] ^= 0x01
		f.Add(mut)
		// And an out-of-range tag.
		mut2 := append([]byte(nil), v3...)
		mut2[40] = 0x63
		f.Add(mut2)
	}
	f.Add([]byte{})
	f.Add([]byte("SPRRGO01garbage"))
	f.Add([]byte("SPRRGO02garbage"))
	f.Add([]byte("SPRRGO03garbage"))
	// The frozen v1 fixture keeps the compatibility decode path in the
	// fuzz corpus even though the encoder now emits v2.
	if v1, err := os.ReadFile(filepath.Join("testdata", "golden_pwe_24x17x9.sperr")); err == nil {
		f.Add(v1)
		f.Add(v1[:len(v1)/2])
	}
	// Checked-in mutants from the fault-injection campaign
	// (internal/faultinject, regenerated via -update-seeds): corruption
	// shapes the campaign proved interesting for the salvage path.
	if mutants, err := filepath.Glob(filepath.Join("testdata", "mutant_*.sperr")); err == nil {
		for _, path := range mutants {
			if seed, err := os.ReadFile(path); err == nil {
				f.Add(seed)
			}
		}
	}
	// v2 structural damage: truncations at the frame and index-footer
	// boundaries, and bit flips inside the index entries and tail.
	for _, cut := range []int{len(multi) - 20, len(multi) - 21, len(multi) - 52} {
		if cut > 0 {
			f.Add(multi[:cut])
		}
	}
	for _, pos := range []int{len(multi) - 1, len(multi) - 9, len(multi) - 17, len(multi) - 24, len(multi) - 45} {
		if pos >= 0 {
			mut := append([]byte(nil), multi...)
			mut[pos] ^= 0x04
			f.Add(mut)
		}
	}
	for _, cut := range []int{1, 7, 8, 35, 36, 40, len(multi) / 2, len(multi) - 1} {
		if cut < len(multi) {
			f.Add(multi[:cut])
		}
	}
	for _, pos := range []int{0, 9, 33, 37, 41, 60} { // magic, dims, nchunks, length table, payload
		if pos < len(multi) {
			mut := append([]byte(nil), multi...)
			mut[pos] ^= 0x80
			f.Add(mut)
		}
	}
	mutated := append([]byte(nil), stream...)
	for i := 10; i < len(mutated); i += 17 {
		mutated[i] ^= 0xA5
	}
	f.Add(mutated)
	// A header that declares an enormous volume in 45 bytes: must be
	// rejected by the decode cap, not allocated.
	huge := []byte("SPRRGO01")
	for _, v := range []uint32{0xFFFFFFF0, 0xFFFFFFF0, 0xFFFFFFF0, 1, 1, 1, 1} {
		huge = binary.LittleEndian.AppendUint32(huge, v)
	}
	f.Add(append(huge, 0, 0, 0, 0))
	f.Fuzz(func(t *testing.T, in []byte) {
		old := chunk.MaxDecodePoints
		chunk.MaxDecodePoints = fuzzDecodeCap
		defer func() { chunk.MaxDecodePoints = old }()
		rec, dims, err := Decompress(in)
		if err == nil {
			if len(rec) != dims[0]*dims[1]*dims[2] {
				t.Fatalf("shape mismatch: %d values for %v", len(rec), dims)
			}
		}
		_, _, _ = DecompressPartial(in, 0.5)
		_, _, _ = DecompressLowRes(in, 1)
		_, _ = Describe(in)
		// The fault-tolerant surfaces share the no-panic invariant, with
		// one more clause: when the strict decode succeeds, salvage must
		// agree (same shape, zero skipped chunks).
		sdata, sdims, rep, serr := DecompressSalvage(in)
		if err == nil {
			if serr != nil {
				t.Fatalf("strict decode ok but salvage failed: %v", serr)
			}
			if sdims != dims || len(sdata) != len(rec) || rep.Skipped != 0 {
				t.Fatalf("salvage disagrees with strict decode: dims %v/%v skipped %d",
					sdims, dims, rep.Skipped)
			}
		}
		_, _ = Audit(in)
		if fixed, _, rerr := Repair(in); rerr == nil {
			// A successful repair must produce a strictly decodable stream.
			if _, _, derr := Decompress(fixed); derr != nil {
				t.Fatalf("repaired stream rejected by strict decode: %v", derr)
			}
		}
	})
}

func FuzzCompressDecompress(f *testing.F) {
	// Round-trip invariant on arbitrary (finite) inputs: the PWE bound
	// must hold for whatever bytes the fuzzer interprets as floats.
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Fuzz(func(t *testing.T, raw []byte, side uint8) {
		n := int(side%6) + 2 // 2..7 per axis
		need := n * n * n
		data := make([]float64, need)
		for i := range data {
			var v float64
			if len(raw) > 0 {
				v = float64(int8(raw[i%len(raw)])) * 0.125
			}
			data[i] = v
		}
		tol := 0.01
		stream, _, err := CompressPWE(data, [3]int{n, n, n}, tol, nil)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		rec, dims, err := Decompress(stream)
		if err != nil {
			t.Fatalf("decompress: %v", err)
		}
		if dims != [3]int{n, n, n} {
			t.Fatalf("dims %v", dims)
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
				t.Fatalf("PWE violated at %d: %g vs %g", i, rec[i], data[i])
			}
		}
	})
}
