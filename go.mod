module sperr

go 1.22
