package sperr

// Tests for the Section VII extension features: average-error-targeted
// compression, progressive (embedded-prefix) decoding, and
// multi-resolution decoding.

import (
	"math"
	"testing"
)

func rmse(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s / float64(len(a)))
}

func TestCompressRMSE(t *testing.T) {
	dims := [3]int{32, 32, 32}
	data := demoField(32, 32, 32, 11)
	for _, target := range []float64{1.0, 0.05} {
		stream, st, err := CompressRMSE(data, dims, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		if got := rmse(data, rec); got > target {
			t.Errorf("target RMSE %g, achieved %g", target, got)
		}
		if st.BPP <= 0 || st.BPP >= 64 {
			t.Errorf("implausible BPP %g", st.BPP)
		}
	}
	if _, _, err := CompressRMSE(data, dims, 0, nil); err == nil {
		t.Error("zero target should fail")
	}
}

func TestCompressPSNR(t *testing.T) {
	dims := [3]int{32, 32, 32}
	data := demoField(32, 32, 32, 13)
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	for _, target := range []float64{40, 70} {
		stream, _, err := CompressPSNR(data, dims, target, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		got := 20 * math.Log10((hi-lo)/rmse(data, rec))
		if got < target {
			t.Errorf("target PSNR %g dB, achieved %g dB", target, got)
		}
	}
	if _, _, err := CompressPSNR(data, dims, -5, nil); err == nil {
		t.Error("negative PSNR should fail")
	}
}

func TestDecompressPartialPublic(t *testing.T) {
	dims := [3]int{32, 32, 32}
	data := demoField(32, 32, 32, 17)
	stream, _, err := CompressPWE(data, dims, 1e-6, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, frac := range []float64{0.1, 0.5, 1.0} {
		rec, gotDims, err := DecompressPartial(stream, frac)
		if err != nil {
			t.Fatalf("frac=%g: %v", frac, err)
		}
		if gotDims != dims {
			t.Fatalf("dims %v", gotDims)
		}
		e := rmse(data, rec)
		if e > prev*1.02 {
			t.Errorf("frac=%g: error %g not improving on %g", frac, e, prev)
		}
		prev = e
	}
	if _, _, err := DecompressPartial(stream, 0); err == nil {
		t.Error("fraction 0 should fail")
	}
	if _, _, err := DecompressPartial(stream, 2); err == nil {
		t.Error("fraction > 1 should fail")
	}
}

func TestDecompressLowResPublic(t *testing.T) {
	dims := [3]int{32, 32, 32}
	data := demoField(32, 32, 32, 19)
	// Two chunk layouts: single chunk, and a 2x2x2 chunk grid whose
	// coarse tiles must reassemble seamlessly.
	for _, cd := range [][3]int{{32, 32, 32}, {16, 16, 16}} {
		stream, _, err := CompressPWE(data, dims, 1e-6, &Options{ChunkDims: cd})
		if err != nil {
			t.Fatal(err)
		}
		full, fullDims, err := DecompressLowRes(stream, 0)
		if err != nil {
			t.Fatal(err)
		}
		if fullDims != dims {
			t.Fatalf("chunk %v: drop=0 dims %v", cd, fullDims)
		}
		if e := rmse(data, full); e > 1e-5 {
			t.Errorf("chunk %v: drop=0 rmse %g", cd, e)
		}
		half, halfDims, err := DecompressLowRes(stream, 1)
		if err != nil {
			t.Fatal(err)
		}
		if halfDims != [3]int{16, 16, 16} {
			t.Fatalf("chunk %v: drop=1 dims %v, want 16^3", cd, halfDims)
		}
		if len(half) != 16*16*16 {
			t.Fatalf("chunk %v: drop=1 len %d", cd, len(half))
		}
		// Coarse values must be on the data's scale, not the raw
		// coefficient scale (which is ~2.8x larger per level).
		lo, hi := data[0], data[0]
		for _, v := range data {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		clo, chi := half[0], half[0]
		for _, v := range half {
			clo = math.Min(clo, v)
			chi = math.Max(chi, v)
		}
		if chi > hi*1.5+1 || clo < lo*1.5-1 {
			t.Errorf("chunk %v: coarse range [%g, %g] vs data [%g, %g] — rescaling off",
				cd, clo, chi, lo, hi)
		}
	}
}
