package sperr

import (
	"bytes"
	"sync"
	"testing"
)

// The chunk pipeline promises byte-identical output streams regardless of
// Workers: chunks are assembled in index order no matter which worker
// finishes first, and the pooled scratch path encodes exactly what the
// fresh path would. These tests run under `go test -race` (see
// `make test-race`) so the worker pool is exercised for data races as
// well as for determinism.

func compressAt(t *testing.T, data []float64, dims [3]int, workers int) ([]byte, *Stats) {
	t.Helper()
	stream, st, err := CompressPWE(data, dims, 1e-3, &Options{
		ChunkDims: [3]int{16, 16, 16},
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return stream, st
}

func TestStreamsIdenticalAcrossWorkers(t *testing.T) {
	dims := [3]int{40, 33, 21} // 3x3x2 = 18 chunks of at most 16^3, many remainders
	data := demoField(dims[0], dims[1], dims[2], 3)

	ref, refStats := compressAt(t, data, dims, 1)
	for _, workers := range []int{2, 8} {
		stream, st := compressAt(t, data, dims, workers)
		if !bytes.Equal(stream, ref) {
			t.Errorf("workers=%d: stream differs from workers=1 (%d vs %d bytes)",
				workers, len(stream), len(ref))
		}
		// Every non-timing Stats field must be reproducible too.
		if st.CompressedBytes != refStats.CompressedBytes ||
			st.NumPoints != refStats.NumPoints ||
			st.NumChunks != refStats.NumChunks ||
			st.NumOutliers != refStats.NumOutliers ||
			st.SpeckBits != refStats.SpeckBits ||
			st.OutlierBits != refStats.OutlierBits ||
			st.BPP != refStats.BPP {
			t.Errorf("workers=%d: stats differ: %+v vs %+v", workers, st, refStats)
		}
	}

	// The decoded data must be independent of decode-side parallelism and
	// of arena reuse across repeated calls.
	first, fdims, err := Decompress(ref)
	if err != nil {
		t.Fatal(err)
	}
	if fdims != dims {
		t.Fatalf("dims %v, want %v", fdims, dims)
	}
	for round := 0; round < 3; round++ {
		again, _, err := Decompress(ref)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if first[i] != again[i] {
				t.Fatalf("round %d: decode differs at %d: %g vs %g", round, i, first[i], again[i])
			}
		}
	}
}

// With more workers than chunks, surplus workers split the passes inside
// each chunk (intra-chunk threads). The streams must stay byte-identical
// to the serial encode, and round-trip decodes (which also go threaded)
// must reproduce the same data.
func TestStreamsIdenticalWithIntraChunkThreads(t *testing.T) {
	dims := [3]int{40, 33, 21}
	data := demoField(dims[0], dims[1], dims[2], 5)

	// One chunk spanning the whole volume: any Workers > 1 becomes pure
	// intra-chunk parallelism.
	one := func(workers int) []byte {
		t.Helper()
		stream, _, err := CompressPWE(data, dims, 1e-3, &Options{
			ChunkDims: dims,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stream
	}
	ref := one(1)
	for _, workers := range []int{2, 3, 8, 16} {
		if stream := one(workers); !bytes.Equal(stream, ref) {
			t.Errorf("workers=%d: intra-chunk threaded stream differs (%d vs %d bytes)",
				workers, len(stream), len(ref))
		}
	}

	// Few chunks, many workers: inter- and intra-chunk parallelism mix.
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{
		ChunkDims: [3]int{32, 32, 32}, // 2x2x1 = 4 chunks
		Workers:   16,                 // 4 intra threads per chunk worker
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, _, err := CompressPWE(data, dims, 1e-3, &Options{
		ChunkDims: [3]int{32, 32, 32},
		Workers:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream, serial) {
		t.Error("mixed inter/intra-chunk parallel stream differs from serial")
	}

	want, _, err := Decompress(ref)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, _, err := DecompressWorkers(ref, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: threaded decode differs at %d", workers, i)
			}
		}
	}
}

// Instrumentation events must arrive in chunk-index order at any
// parallelism, with per-chunk sizes that add up to the real stream.
func TestInstrumentEventOrdering(t *testing.T) {
	dims := [3]int{40, 33, 21}
	data := demoField(dims[0], dims[1], dims[2], 7)
	for _, workers := range []int{1, 2, 8} {
		var events []ChunkEvent
		stream, st, err := CompressPWE(data, dims, 1e-3, &Options{
			ChunkDims:  [3]int{16, 16, 16},
			Workers:    workers,
			Instrument: func(e ChunkEvent) { events = append(events, e) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(events) != st.NumChunks {
			t.Fatalf("workers=%d: %d events for %d chunks", workers, len(events), st.NumChunks)
		}
		var bytesIn, bytesOut, outliers int
		for i, e := range events {
			if e.Index != i {
				t.Fatalf("workers=%d: event %d has index %d (out of order)", workers, i, e.Index)
			}
			if e.BytesIn != e.Dims[0]*e.Dims[1]*e.Dims[2]*8 {
				t.Errorf("event %d: BytesIn %d does not match dims %v", i, e.BytesIn, e.Dims)
			}
			if e.WallTime <= 0 {
				t.Errorf("event %d: non-positive wall time", i)
			}
			bytesIn += e.BytesIn
			bytesOut += e.BytesOut
			outliers += e.NumOutliers
		}
		if bytesIn != len(data)*8 {
			t.Errorf("workers=%d: events cover %d input bytes, want %d", workers, bytesIn, len(data)*8)
		}
		if bytesOut >= len(stream) {
			t.Errorf("workers=%d: per-chunk output %d not below container size %d",
				workers, bytesOut, len(stream))
		}
		if outliers != st.NumOutliers {
			t.Errorf("workers=%d: events count %d outliers, stats say %d", workers, outliers, st.NumOutliers)
		}
	}
}

// Concurrent compressions and decompressions share the package-level
// scratch pool; under -race this verifies arenas are never shared between
// live pipelines.
func TestConcurrentPipelinesShareScratchPool(t *testing.T) {
	dims := [3]int{24, 19, 11}
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			data := demoField(dims[0], dims[1], dims[2], seed)
			stream, _, err := CompressPWE(data, dims, 1e-2, &Options{
				ChunkDims: [3]int{8, 8, 8},
				Workers:   2,
			})
			if err != nil {
				t.Error(err)
				return
			}
			rec, _, err := Decompress(stream)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range data {
				if d := rec[i] - data[i]; d > 1e-2*(1+1e-9) || d < -1e-2*(1+1e-9) {
					t.Errorf("seed %d: PWE violated at %d", seed, i)
					return
				}
			}
		}(int64(g))
	}
	wg.Wait()
}
