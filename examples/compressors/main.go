// Compressor shoot-out: run the five compressors of the paper's
// evaluation (SPERR, SZ3-, ZFP-, MGARD-, and TTHRESH-like) on one field
// at one tolerance and print the Figure 8/9-style comparison — a compact,
// runnable version of Section VI.
package main

import (
	"fmt"
	"log"
	"math"

	"sperr"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/mgard"
	"sperr/internal/synth"
	"sperr/internal/sz"
	"sperr/internal/tthresh"
	"sperr/internal/zfp"
)

func main() {
	const n = 48
	d := grid.D3(n, n, n)
	vol := synth.MirandaViscosity(d, 7)
	idx := 20
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), idx)
	fmt.Printf("field: Miranda Viscosity %v, tolerance idx=%d (t=%.3g)\n\n", d, idx, tol)
	fmt.Println("compressor   BPP      PSNR dB   gain    maxErr/t   PWE bounded?")

	report := func(name string, stream []byte, recon []float64, guaranteed bool) {
		bpp := metrics.BPP(len(stream), d.Len())
		maxe := metrics.MaxErr(vol.Data, recon)
		bounded := "yes"
		if !guaranteed {
			bounded = "no (by design)"
		} else if maxe > tol*(1+1e-9) {
			bounded = "VIOLATED"
		}
		fmt.Printf("%-10s %7.3f  %8.2f  %6.2f  %9.3f   %s\n",
			name, bpp, metrics.PSNR(vol.Data, recon),
			metrics.AccuracyGain(vol.Data, recon, bpp), maxe/tol, bounded)
	}

	// SPERR (this library).
	stream, _, err := sperr.CompressPWE(vol.Data, [3]int{n, n, n}, tol, nil)
	if err != nil {
		log.Fatal(err)
	}
	recon, _, err := sperr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	report("SPERR", stream, recon, true)

	// SZ3-like interpolation predictor.
	szStream, err := sz.Compress(vol.Data, d, sz.Params{Tol: tol})
	if err != nil {
		log.Fatal(err)
	}
	szRecon, _, err := sz.Decompress(szStream)
	if err != nil {
		log.Fatal(err)
	}
	report("SZ3", szStream, szRecon, true)

	// ZFP-like fixed-accuracy mode.
	zfpStream, err := zfp.Compress(vol.Data, d, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tol: tol})
	if err != nil {
		log.Fatal(err)
	}
	zfpRecon, _, err := zfp.Decompress(zfpStream)
	if err != nil {
		log.Fatal(err)
	}
	report("ZFP", zfpStream, zfpRecon, true)

	// MGARD-like multilevel compressor.
	mgardStream, err := mgard.Compress(vol.Data, d, mgard.Params{Tol: tol})
	if err != nil {
		log.Fatal(err)
	}
	mgardRecon, _, err := mgard.Decompress(mgardStream)
	if err != nil {
		log.Fatal(err)
	}
	report("MGARD", mgardStream, mgardRecon, true)

	// TTHRESH-like Tucker compressor: average-error target only, per the
	// paper PSNR = 20*log10(2)*idx.
	psnr := 20 * math.Log10(2) * float64(idx)
	ttStream, err := tthresh.Compress(vol.Data, d, tthresh.Params{TargetPSNR: psnr})
	if err != nil {
		log.Fatal(err)
	}
	ttRecon, _, err := tthresh.Decompress(ttStream)
	if err != nil {
		log.Fatal(err)
	}
	report("TTHRESH", ttStream, ttRecon, false)

	fmt.Println("\nexpected shape (paper Figs. 8-9): SPERR needs the fewest bits to meet")
	fmt.Println("the tolerance; SZ3 and ZFP follow; MGARD pays the most; TTHRESH meets")
	fmt.Println("an average-error target but offers no point-wise bound.")
}
