// Multi-resolution exploration: wavelet hierarchies represent data as
// self-similar coarsenings (paper Section VII), so one SPERR archive can
// serve an interactive "overview first, zoom on demand" workflow without
// re-compression: decode a tiny coarse level to find the feature, then a
// finer level, then the exact data with its error bound.
package main

import (
	"fmt"
	"log"
	"math"

	"sperr"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/synth"
)

func main() {
	const n = 64
	vol := synth.S3DTemperature(grid.D3(n, n, n), 5)
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 20)
	stream, stats, err := sperr.CompressPWE(vol.Data, [3]int{n, n, n}, tol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived %d^3 combustion field once: %d bytes (%.2f BPP)\n\n",
		n, stats.CompressedBytes, stats.BPP)

	// The analysis task: locate the hottest region of the flame.
	fmt.Println("level  dims        points  hot-spot (fine coords)   max T")
	fullX, fullY, fullZ, _ := hotspot(vol.Data, grid.D3(n, n, n), 1)
	for drop := 3; drop >= 0; drop-- {
		data, dims, err := sperr.DecompressLowRes(stream, drop)
		if err != nil {
			log.Fatal(err)
		}
		d := grid.D3(dims[0], dims[1], dims[2])
		scale := 1 << drop
		x, y, z, maxT := hotspot(data, d, scale)
		fmt.Printf("%5d  %-10s  %6d  (%3d, %3d, %3d)          %7.1f\n",
			drop, d.String(), d.Len(), x, y, z, maxT)
	}
	fmt.Printf("\nground truth hot-spot: (%d, %d, %d)\n", fullX, fullY, fullZ)
	fmt.Println("the coarse levels recover the flame's temperature scale and its hot")
	fmt.Println("band from a tiny fraction of the points (512 at drop=3 vs 262144), so")
	fmt.Println("an analyst can pick the region to decode at full precision.")

	// The final zoom: full decode restores the point-wise guarantee.
	recon, _, err := sperr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range recon {
		if e := math.Abs(recon[i] - vol.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("full decode max error %.3g <= tolerance %.3g\n", maxErr, tol)
}

// hotspot returns the location (in fine-grid coordinates) and value of the
// maximum.
func hotspot(data []float64, d grid.Dims, scale int) (x, y, z int, v float64) {
	v = math.Inf(-1)
	for zz := 0; zz < d.NZ; zz++ {
		for yy := 0; yy < d.NY; yy++ {
			for xx := 0; xx < d.NX; xx++ {
				if t := data[d.Index(xx, yy, zz)]; t > v {
					v = t
					x, y, z = xx*scale, yy*scale, zz*scale
				}
			}
		}
	}
	return
}
