// Turbulence-database scenario: the paper's second motivating archive is
// the Johns Hopkins Turbulence Database — hundreds of terabytes served to
// researchers worldwide, where transmitted bytes matter most.
//
// This example serves a turbulence cutout three ways:
//
//  1. size-bounded compression (fixed bits-per-point budgets, SPECK's
//     embedded stream truncated at the budget) for bandwidth-capped
//     delivery, and
//  2. progressive access: one error-bounded stream, decoded from
//     successively longer prefixes — the streaming mode of Section VII.
//  3. chunked parallel compression for the server-side ingest path.
package main

import (
	"fmt"
	"log"

	"sperr"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/synth"
)

func main() {
	const n = 64
	dims := [3]int{n, n, n}
	vol := synth.MirandaVelocityX(grid.D3(n, n, n), 42)

	fmt.Println("-- fixed-size delivery (bandwidth budgets) --")
	fmt.Println("budget BPP   bytes     PSNR dB   accuracy gain")
	for _, bpp := range []float64{0.25, 0.5, 1, 2, 4, 8} {
		stream, stats, err := sperr.CompressBPP(vol.Data, dims, bpp, nil)
		if err != nil {
			log.Fatal(err)
		}
		recon, _, err := sperr.Decompress(stream)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%10.2f   %7d   %7.2f   %6.2f\n",
			bpp, stats.CompressedBytes,
			metrics.PSNR(vol.Data, recon),
			metrics.AccuracyGain(vol.Data, recon, stats.BPP))
	}

	fmt.Println("\n-- progressive access from one archived stream --")
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 20)
	stream, stats, err := sperr.CompressPWE(vol.Data, dims, tol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archived once at idx=20 (t=%.3g): %d bytes\n", tol, stats.CompressedBytes)
	fmt.Println("prefix     effective bytes   PSNR dB")
	for _, frac := range []float64{0.05, 0.15, 0.4, 1.0} {
		recon, _, err := sperr.DecompressPartial(stream, frac)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%5.0f%%     %15.0f   %7.2f\n",
			frac*100, frac*float64(stats.CompressedBytes),
			metrics.PSNR(vol.Data, recon))
	}
	fmt.Println("a 5% prefix already renders a preview; the full stream restores the")
	fmt.Println("point-wise guarantee.")

	fmt.Println("\n-- server-side ingest: chunked parallel compression --")
	stream2, stats2, err := sperr.CompressPWE(vol.Data, dims, tol, &sperr.Options{
		ChunkDims: [3]int{32, 32, 32},
		Workers:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d chunks compressed in %v -> %d bytes (%.3f BPP)\n",
		stats2.NumChunks, stats2.WallTime.Round(1000), len(stream2), stats2.BPP)
}
