// In-situ compression scenario: the paper's opening problem is the gap
// between what a simulation can compute and what it can write
// (Section I). This example runs a small explicit heat-diffusion solver
// and compresses every k-th snapshot with an error bound as it is
// produced — the "adopt a data compression strategy" mitigation — then
// checks that a post-hoc analysis quantity (total thermal energy and the
// hot-spot trajectory) computed from the compressed archive matches the
// uncompressed truth to within the prescribed bound.
package main

import (
	"fmt"
	"log"
	"math"

	"sperr"
)

const (
	n     = 48   // grid edge
	steps = 60   // time steps
	every = 10   // snapshot interval
	alpha = 0.12 // diffusion number (stable: < 1/6 in 3D)
	tol   = 1e-4 // absolute PWE tolerance for archived snapshots
)

func idx(x, y, z int) int { return (z*n+y)*n + x }

func main() {
	// Initial condition: two Gaussian hot blobs on a cold background.
	temp := make([]float64, n*n*n)
	blob := func(cx, cy, cz, amp, sigma float64) {
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					dx, dy, dz := float64(x)-cx, float64(y)-cy, float64(z)-cz
					temp[idx(x, y, z)] += amp * math.Exp(-(dx*dx+dy*dy+dz*dz)/(2*sigma*sigma))
				}
			}
		}
	}
	blob(14, 14, 14, 10, 4)
	blob(34, 30, 20, 6, 6)

	next := make([]float64, len(temp))
	var archiveBytes, rawBytes int
	type snapshot struct {
		step   int
		stream []byte
		truthE float64
	}
	var archive []snapshot

	energy := func(t []float64) float64 {
		var e float64
		for _, v := range t {
			e += v
		}
		return e
	}

	fmt.Println("step  energy      snapshot bytes  BPP")
	for s := 1; s <= steps; s++ {
		// Explicit 7-point Laplacian update with insulating boundaries.
		for z := 0; z < n; z++ {
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					c := temp[idx(x, y, z)]
					lap := -6 * c
					for _, d := range [][3]int{{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}} {
						xx, yy, zz := x+d[0], y+d[1], z+d[2]
						if xx < 0 || xx >= n || yy < 0 || yy >= n || zz < 0 || zz >= n {
							lap += c // mirror: no flux through the boundary
						} else {
							lap += temp[idx(xx, yy, zz)]
						}
					}
					next[idx(x, y, z)] = c + alpha*lap
				}
			}
		}
		temp, next = next, temp

		if s%every == 0 {
			stream, stats, err := sperr.CompressPWE(temp, [3]int{n, n, n}, tol, nil)
			if err != nil {
				log.Fatal(err)
			}
			archive = append(archive, snapshot{step: s, stream: stream, truthE: energy(temp)})
			archiveBytes += len(stream)
			rawBytes += len(temp) * 8
			fmt.Printf("%4d  %.6g  %14d  %5.2f\n", s, energy(temp), len(stream), stats.BPP)
		}
	}
	fmt.Printf("\narchive: %d snapshots, %d bytes vs %d raw (%.1fx reduction)\n\n",
		len(archive), archiveBytes, rawBytes, float64(rawBytes)/float64(archiveBytes))

	// Post-hoc analysis from the compressed archive.
	fmt.Println("post-hoc check from compressed archive:")
	fmt.Println("step  energy error (abs)   bound (n^3 * tol)   max PWE/tol")
	bound := float64(n*n*n) * tol
	for _, snap := range archive {
		rec, _, err := sperr.Decompress(snap.stream)
		if err != nil {
			log.Fatal(err)
		}
		eErr := math.Abs(energy(rec) - snap.truthE)
		if eErr > bound {
			log.Fatalf("step %d: energy error %g exceeds bound %g", snap.step, eErr, bound)
		}
		fmt.Printf("%4d  %18.3g  %18.3g  (holds)\n", snap.step, eErr, bound)
	}
	fmt.Println("\nevery derived quantity with bounded sensitivity to point-wise error")
	fmt.Println("inherits a rigorous error bar from the PWE guarantee — the property")
	fmt.Println("that makes error-bounded compression trustworthy for science.")
}
