// Quickstart: compress a 3D scalar field with a point-wise error
// guarantee, decompress it, and verify the guarantee — the shortest
// possible tour of the public API.
package main

import (
	"fmt"
	"log"
	"math"

	"sperr"
)

func main() {
	// A 64^3 analytic field standing in for simulation output.
	const n = 64
	dims := [3]int{n, n, n}
	data := make([]float64, n*n*n)
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[i] = math.Sin(0.1*float64(x)) * math.Cos(0.08*float64(y)) *
					math.Exp(-0.02*float64(z))
				i++
			}
		}
	}

	// Compress with a point-wise error tolerance of 1e-4: no decompressed
	// value will differ from the original by more than that.
	const tol = 1e-4
	stream, stats, err := sperr.CompressPWE(data, dims, tol, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compressed %d points into %d bytes (%.2f bits/point, %d outliers corrected)\n",
		stats.NumPoints, stats.CompressedBytes, stats.BPP, stats.NumOutliers)

	recon, gotDims, err := sperr.Decompress(stream)
	if err != nil {
		log.Fatal(err)
	}
	maxErr := 0.0
	for i := range data {
		if e := math.Abs(recon[i] - data[i]); e > maxErr {
			maxErr = e
		}
	}
	fmt.Printf("decompressed %dx%dx%d; max point-wise error %.3g (tolerance %.3g)\n",
		gotDims[0], gotDims[1], gotDims[2], maxErr, tol)
	if maxErr > tol {
		log.Fatal("tolerance violated — this must never happen")
	}
	fmt.Println("PWE guarantee holds.")
}
