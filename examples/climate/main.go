// Climate-archive scenario: the paper motivates SPERR with large
// community data sets — written once, read by thousands of researchers
// for years (NCAR CESM LENS, ~500 TB) — where achieved compression rate
// trumps compression speed.
//
// This example compresses an ensemble of turbulence-like "climate" fields
// at archive-grade tolerances (Table I's idx levels), reports the storage
// the archive saves at each level, and verifies the PWE guarantee that
// makes the archive trustworthy for quantitative reanalysis.
package main

import (
	"fmt"
	"log"
	"math"

	"sperr"
	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/synth"
)

func main() {
	const n = 64
	d := grid.D3(n, n, n)
	dims := [3]int{n, n, n}

	// A small "ensemble" of member fields, as LENS stores per member.
	members := []struct {
		name string
		vol  *grid.Volume
	}{
		{"pressure (member 01)", synth.MirandaPressure(d, 1)},
		{"pressure (member 02)", synth.MirandaPressure(d, 2)},
		{"velocity-x (member 01)", synth.MirandaVelocityX(d, 1)},
	}

	fmt.Println("archive compression at Table I tolerance levels")
	fmt.Println("idx  meaning                      field                    BPP     ratio   maxErr/t")
	for _, idx := range []int{10, 20, 30} {
		meaning := map[int]string{
			10: "1/1000 of data range",
			20: "1/1e6 of data range ",
			30: "1/1e9 of data range ",
		}[idx]
		for _, m := range members {
			rng := metrics.Range(m.vol.Data)
			tol := metrics.ToleranceForIdx(rng, idx)
			stream, stats, err := sperr.CompressPWE(m.vol.Data, dims, tol, nil)
			if err != nil {
				log.Fatal(err)
			}
			recon, _, err := sperr.Decompress(stream)
			if err != nil {
				log.Fatal(err)
			}
			maxErr := 0.0
			for i := range recon {
				if e := math.Abs(recon[i] - m.vol.Data[i]); e > maxErr {
					maxErr = e
				}
			}
			ratio := float64(8*len(m.vol.Data)) / float64(stats.CompressedBytes)
			fmt.Printf("%-3d  %s  %-22s  %6.3f  %5.1fx  %.3f\n",
				idx, meaning, m.name, stats.BPP, ratio, maxErr/tol)
			if maxErr > tol {
				log.Fatalf("tolerance violated for %s at idx %d", m.name, idx)
			}
		}
	}
	fmt.Println("\nevery member satisfies its point-wise error bound; at idx=10")
	fmt.Println("(visualization grade) the archive shrinks by more than an order of")
	fmt.Println("magnitude, exactly the trade the paper's motivating archives make.")
}
