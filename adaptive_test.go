package sperr

// Container-v3 adaptive codec selection: acceptance, golden fixture,
// determinism, and forged-tag rejection tests. The heterogeneous fixture
// volume is built so distinct backends win distinct chunks — a constant
// slab, a smooth low-degree polynomial region, and a turbulent region —
// with 16^3 chunks so the trial sub-block is the whole chunk and the
// selection is provably the per-chunk minimum.

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"hash/crc32"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// hetField builds the heterogeneous selection volume: x-slabs of constant,
// smooth polynomial, and turbulent content, tiled so a 16^3 chunking puts
// each regime in its own chunks. Deterministic for a given seed.
func hetField(nx, ny, nz int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				switch {
				case x < nx/3:
					// Constant slab: every backend codes this in a few bytes.
					data[i] = 2.5
				case x < 2*nx/3:
					// Smooth quadratic ramp: a predictor-based coder's best case.
					fx, fy, fz := float64(x)/float64(nx), float64(y)/float64(ny), float64(z)/float64(nz)
					data[i] = 10*fx*fx + 4*fy - 3*fz + fx*fy
				default:
					// Turbulent: broadband sine mixture plus noise.
					data[i] = 20*math.Sin(0.9*float64(x))*math.Cos(1.1*float64(y))*
						math.Sin(0.7*float64(z)) + 4*rng.NormFloat64()
				}
				i++
			}
		}
	}
	return data
}

const adaptiveTol = 1e-3

var adaptiveDims = [3]int{48, 32, 32} // 3x2x2 = 12 chunks of 16^3, one regime per x-slab

func adaptiveOpts() *Options {
	return &Options{ChunkDims: [3]int{16, 16, 16}, Workers: 2}
}

// TestAdaptiveSelection is the tentpole acceptance test: on the
// heterogeneous volume, ModeAdaptive must engage at least two distinct
// backends, honor the PWE bound everywhere, and produce a stream no
// larger than the best single-codec run at the same tolerance.
func TestAdaptiveSelection(t *testing.T) {
	data := hetField(adaptiveDims[0], adaptiveDims[1], adaptiveDims[2], 11)
	stream, st, err := CompressAdaptive(data, adaptiveDims, adaptiveTol, adaptiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CodecCounts) < 2 {
		t.Fatalf("adaptive selection engaged %d codec(s) %v, want >= 2", len(st.CodecCounts), st.CodecCounts)
	}
	total := 0
	for _, n := range st.CodecCounts {
		total += n
	}
	if total != st.NumChunks {
		t.Fatalf("codec counts cover %d chunks, want %d", total, st.NumChunks)
	}

	rec, dims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if dims != adaptiveDims {
		t.Fatalf("dims %v, want %v", dims, adaptiveDims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > adaptiveTol*(1+1e-9) {
			t.Fatalf("PWE violated at %d: %g vs %g", i, rec[i], data[i])
		}
	}

	// Size bar: adaptive must not lose to any single-codec stream of the
	// same volume at the same bound — including the default SPERR v2 path,
	// which doesn't even pay the per-chunk tag byte.
	best, bestName := 0, ""
	for _, name := range []string{"sperr", "sz", "zfp", "tthresh", "mgard"} {
		opts := adaptiveOpts()
		if name != "sperr" {
			opts.Codec = name
		}
		single, _, err := CompressPWE(data, adaptiveDims, adaptiveTol, opts)
		if err != nil {
			t.Fatalf("single-codec %s: %v", name, err)
		}
		if bestName == "" || len(single) < best {
			best, bestName = len(single), name
		}
	}
	if len(stream) > best {
		t.Errorf("adaptive stream %d bytes loses to single-codec %s at %d bytes (counts %v)",
			len(stream), bestName, best, st.CodecCounts)
	}
	t.Logf("adaptive %d bytes (codecs %v) vs best single %s %d bytes",
		len(stream), st.CodecCounts, bestName, best)
}

// TestGoldenStreamV3 pins the adaptive container-v3 format bit-exactly,
// the same contract TestGoldenStream pins for v2. Regenerate deliberately:
//
//	go test -run TestGoldenStreamV3 -update-golden
func TestGoldenStreamV3(t *testing.T) {
	data := hetField(adaptiveDims[0], adaptiveDims[1], adaptiveDims[2], 11)
	stream, _, err := CompressAdaptive(data, adaptiveDims, adaptiveTol, adaptiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_adaptive_48x32x32_v3.sperr")
	if *updateGolden {
		if err := os.WriteFile(path, stream, 0o644); err != nil {
			t.Fatal(err)
		}
		h := sha256.Sum256(stream)
		t.Logf("wrote %s (%d bytes, sha256 %s)", path, len(stream), hex.EncodeToString(h[:]))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden v3 fixture (run with -update-golden): %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatalf("adaptive encoder output diverged from golden v3 fixture: %d vs %d bytes",
			len(stream), len(want))
	}

	rec, dims, err := Decompress(want)
	if err != nil {
		t.Fatalf("golden v3 fixture no longer decodes: %v", err)
	}
	if dims != adaptiveDims {
		t.Fatalf("golden v3 dims %v, want %v", dims, adaptiveDims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > adaptiveTol*(1+1e-9) {
			t.Fatalf("golden v3 PWE violated at %d: %g vs %g", i, rec[i], data[i])
		}
	}

	info, err := Describe(want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 || info.Mode != "adaptive" || info.Tolerance != adaptiveTol {
		t.Fatalf("golden v3 Describe drifted: version=%d mode=%q tol=%g",
			info.Version, info.Mode, info.Tolerance)
	}
	if info.NumChunks != 12 {
		t.Fatalf("golden v3 chunk count %d, want 12", info.NumChunks)
	}
	if len(info.CodecCounts) < 2 {
		t.Fatalf("golden v3 fixture records %v, want >= 2 codecs", info.CodecCounts)
	}
	// The per-chunk codec map must agree with the aggregate histogram.
	counts := map[string]int{}
	for _, c := range info.Chunks {
		counts[c.Codec]++
	}
	for name, n := range info.CodecCounts {
		if counts[name] != n {
			t.Fatalf("codec map %v disagrees with histogram %v", counts, info.CodecCounts)
		}
	}
}

// TestAdaptiveDeterministicAcrossWorkers: selection and the emitted v3
// bytes must be identical at every worker count, and the streaming
// Encoder must reproduce the one-shot stream exactly.
func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	data := hetField(adaptiveDims[0], adaptiveDims[1], adaptiveDims[2], 23)
	one := func(workers int) ([]byte, *Stats) {
		t.Helper()
		opts := adaptiveOpts()
		opts.Workers = workers
		stream, st, err := CompressAdaptive(data, adaptiveDims, adaptiveTol, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return stream, st
	}
	ref, refStats := one(1)
	for _, workers := range []int{2, 4, 8} {
		stream, st := one(workers)
		if !bytes.Equal(stream, ref) {
			t.Errorf("workers=%d: adaptive stream differs from workers=1 (%d vs %d bytes)",
				workers, len(stream), len(ref))
		}
		if len(st.CodecCounts) != len(refStats.CodecCounts) {
			t.Errorf("workers=%d: codec counts %v vs %v", workers, st.CodecCounts, refStats.CodecCounts)
		}
		for name, n := range refStats.CodecCounts {
			if st.CodecCounts[name] != n {
				t.Errorf("workers=%d: codec counts %v vs %v", workers, st.CodecCounts, refStats.CodecCounts)
			}
		}
	}

	// Streaming twin: NewEncoderAdaptive fed in arbitrary granularity must
	// emit the identical byte stream.
	var buf bytes.Buffer
	opts := adaptiveOpts()
	opts.Workers = 3
	enc, err := NewEncoderAdaptive(&buf, adaptiveDims, adaptiveTol, opts)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); {
		n := 1000
		if off+n > len(data) {
			n = len(data) - off
		}
		if _, err := enc.Write(data[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), ref) {
		t.Errorf("streaming adaptive encode differs from one-shot (%d vs %d bytes)",
			buf.Len(), len(ref))
	}
}

// --- v3 frame/footer surgery helpers for the forged-tag tests ---

var testCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// v3Layout locates the index footer pieces of a v3 stream.
type v3Layout struct {
	nchunks  int
	idxOff   int // first index entry
	mapOff   int // codec map (nchunks bytes)
	bodyEnd  int // end of entries+map+aggregates (= start of tail)
	crcOff   int // index CRC inside the tail
	frameOff []int
	frameLen []int // payload length (tag byte included)
}

func parseV3(t *testing.T, stream []byte) v3Layout {
	t.Helper()
	if string(stream[:8]) != "SPRRGO03" {
		t.Fatalf("not a v3 stream: magic %q", stream[:8])
	}
	var l v3Layout
	l.nchunks = int(binary.LittleEndian.Uint32(stream[32:]))
	l.idxOff = int(binary.LittleEndian.Uint64(stream[len(stream)-16:]))
	l.mapOff = l.idxOff + 16*l.nchunks
	l.bodyEnd = len(stream) - 20
	l.crcOff = len(stream) - 20
	for i := 0; i < l.nchunks; i++ {
		e := l.idxOff + 16*i
		l.frameOff = append(l.frameOff, int(binary.LittleEndian.Uint64(stream[e:])))
		l.frameLen = append(l.frameLen, int(binary.LittleEndian.Uint32(stream[e+8:])))
	}
	return l
}

// forgeTag rewrites chunk i's codec tag to newTag, recomputing the frame
// CRC and the index entry CRC so the damage is invisible to checksums.
// When fixMap is set, the footer codec map byte is rewritten too (and the
// index CRC always is, so the footer itself verifies).
func forgeTag(t *testing.T, stream []byte, i int, newTag byte, fixMap bool) []byte {
	t.Helper()
	mut := bytes.Clone(stream)
	l := parseV3(t, mut)
	pOff := l.frameOff[i] + 4
	mut[pOff] = newTag
	crc := crc32.Checksum(mut[pOff:pOff+l.frameLen[i]], testCastagnoli)
	binary.LittleEndian.PutUint32(mut[pOff+l.frameLen[i]:], crc)
	binary.LittleEndian.PutUint32(mut[l.idxOff+16*i+12:], crc)
	if fixMap {
		mut[l.mapOff+i] = newTag
	}
	idxCRC := crc32.Checksum(mut[l.idxOff:l.bodyEnd], testCastagnoli)
	binary.LittleEndian.PutUint32(mut[l.crcOff:], idxCRC)
	return mut
}

// TestForgedCodecTagFails: a codec tag rewritten to disagree with the
// footer map — even with every checksum recomputed — must fail as
// ErrCorrupt on every decode surface, and an out-of-range tag must fail
// even when the footer map is forged to match.
func TestForgedCodecTagFails(t *testing.T) {
	data := hetField(adaptiveDims[0], adaptiveDims[1], adaptiveDims[2], 11)
	stream, st, err := CompressAdaptive(data, adaptiveDims, adaptiveTol, adaptiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	l := parseV3(t, stream)

	// Pick a chunk and a different valid codec id to forge.
	orig := stream[l.frameOff[0]+4]
	other := byte(0)
	if orig == 0 {
		other = 2 // zfp
	}
	mustCorrupt := func(name string, mut []byte) {
		t.Helper()
		if _, _, err := Decompress(mut); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decompress err = %v, want ErrCorrupt", name, err)
		}
		dec, err := NewDecoder(bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Errorf("%s: NewDecoder err = %v, want ErrCorrupt", name, err)
			}
			return
		}
		if _, _, err := dec.DecodeAll(); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: streaming decode err = %v, want ErrCorrupt", name, err)
		}
	}

	// (a) Tag flipped, CRCs patched, footer map left alone: the frame/footer
	// cross-check must catch the disagreement.
	mustCorrupt("tag-vs-footer mismatch", forgeTag(t, stream, 0, other, false))

	// (b) Out-of-range tag with footer forged to match: the codec map
	// validation (and the tagged decode) must reject the unknown id.
	mustCorrupt("out-of-range tag", forgeTag(t, stream, 0, 99, true))

	// (c) Tag flipped with no checksum repair at all: ordinary CRC failure.
	raw := bytes.Clone(stream)
	raw[l.frameOff[1]+4] ^= 0x01
	mustCorrupt("tag flip without CRC fix", raw)

	// (d) Consistent forgery — tag, footer map, and every checksum rewritten
	// to a different *valid* codec: the payload now parses under the wrong
	// backend and must still surface an error rather than silent garbage.
	// (The backends' streams are self-describing enough to reject each
	// other's headers.)
	forged := forgeTag(t, stream, 0, other, true)
	if _, _, err := Decompress(forged); err == nil {
		t.Errorf("consistent forgery to codec %d decoded without error", other)
	}
	_ = st
}

// TestSalvageMixedCodecStream: damaging one frame of a v3 adaptive stream
// must leave every other chunk recoverable — including non-SPERR ones —
// and Repair must emit a strictly decodable v3 container.
func TestSalvageMixedCodecStream(t *testing.T) {
	data := hetField(adaptiveDims[0], adaptiveDims[1], adaptiveDims[2], 11)
	stream, st, err := CompressAdaptive(data, adaptiveDims, adaptiveTol, adaptiveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(st.CodecCounts) < 2 {
		t.Fatalf("fixture not mixed-codec: %v", st.CodecCounts)
	}
	l := parseV3(t, stream)
	victim := 1
	mut := bytes.Clone(stream)
	mut[l.frameOff[victim]+4+l.frameLen[victim]/2] ^= 0x10

	rec, dims, rep, err := DecompressSalvage(mut)
	if err != nil {
		t.Fatal(err)
	}
	if dims != adaptiveDims {
		t.Fatalf("dims %v", dims)
	}
	if rep.Chunks[victim].Recovered {
		t.Fatal("damaged chunk reported recovered")
	}
	if rep.Recovered != st.NumChunks-1 {
		t.Fatalf("recovered %d of %d chunks, want all but one", rep.Recovered, st.NumChunks)
	}
	want, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	c := rep.Chunks[victim]
	inVictim := func(i int) bool {
		x := i % dims[0]
		y := (i / dims[0]) % dims[1]
		z := i / (dims[0] * dims[1])
		return x >= c.Origin[0] && x < c.Origin[0]+c.Dims.NX &&
			y >= c.Origin[1] && y < c.Origin[1]+c.Dims.NY &&
			z >= c.Origin[2] && z < c.Origin[2]+c.Dims.NZ
	}
	for i := range want {
		if inVictim(i) {
			if !math.IsNaN(rec[i]) {
				t.Fatalf("damaged chunk sample %d = %g, want NaN", i, rec[i])
			}
		} else if math.Float64bits(rec[i]) != math.Float64bits(want[i]) {
			t.Fatalf("intact sample %d differs after salvage", i)
		}
	}

	fixed, rrep, err := Repair(mut)
	if err != nil {
		t.Fatal(err)
	}
	if rrep.Recovered != st.NumChunks-1 {
		t.Fatalf("repair recovered %d chunks", rrep.Recovered)
	}
	rdata, rdims, err := Decompress(fixed)
	if err != nil {
		t.Fatalf("repaired v3 stream rejected by strict decode: %v", err)
	}
	if rdims != adaptiveDims {
		t.Fatalf("repaired dims %v", rdims)
	}
	info, err := Describe(fixed)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 3 {
		t.Fatalf("repair downgraded container to v%d", info.Version)
	}
	for i := range rdata {
		if !inVictim(i) && math.Float64bits(rdata[i]) != math.Float64bits(want[i]) {
			t.Fatalf("repaired sample %d differs", i)
		}
	}
}

// BenchmarkAdaptiveSelect measures the full adaptive encode (profile +
// trials + final encode) against the SPERR-only baseline on the same
// volume. The analyzer itself is BenchmarkProfileChunk (internal/codec);
// the trial overhead scales as (32/chunkEdge)^3 per candidate, so the
// 32^3-chunk run is the worst case (trials cost five full chunk encodes)
// and the 64^3-chunk run shows the sampled-trial regime the paper's
// 256^3 tiling amortizes toward ~1% per candidate. BENCH_KERNELS.json
// records the measured ratios.
func BenchmarkAdaptiveSelect(b *testing.B) {
	dims := [3]int{64, 64, 64}
	data := demoField(dims[0], dims[1], dims[2], 7)
	for _, cfg := range []struct {
		name  string
		chunk [3]int
	}{
		{"exact-trial-32cube-chunks", [3]int{32, 32, 32}},
		{"sampled-trial-64cube-chunk", [3]int{64, 64, 64}},
	} {
		opts := &Options{ChunkDims: cfg.chunk, Workers: 1}
		b.Run("adaptive/"+cfg.name, func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			for i := 0; i < b.N; i++ {
				if _, _, err := CompressAdaptive(data, dims, 1e-3, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("sperr-only/"+cfg.name, func(b *testing.B) {
			b.SetBytes(int64(len(data) * 8))
			for i := 0; i < b.N; i++ {
				if _, _, err := CompressPWE(data, dims, 1e-3, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
