package sperr

// Tests of the streaming engine's cancellation hooks (SetContext): a
// done context must stop chunk workers promptly — queued encodes and
// decodes are abandoned, Write/Close/ForEachChunk surface the context
// error — and a cancelled engine must leave the shared scratch pool
// healthy for later use.

import (
	"bytes"
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestEncoderContextCancel: cancelling between Writes makes the next
// Write fail with the context error and stops further chunk encodes.
func TestEncoderContextCancel(t *testing.T) {
	data, dims := streamTestInput()
	var events atomic.Int64
	opts := &Options{
		ChunkDims:  [3]int{16, 16, 16},
		Workers:    2,
		Instrument: func(ChunkEvent) { events.Add(1) },
	}
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	enc, err := NewEncoderPWE(&buf, dims, 1e-3, opts)
	if err != nil {
		t.Fatal(err)
	}
	enc.SetContext(ctx)
	total := enc.NumChunks()

	slab := dims[0] * dims[1] * 16
	if _, err := enc.Write(data[:slab]); err != nil {
		t.Fatalf("pre-cancel Write: %v", err)
	}
	cancel()
	if _, err := enc.Write(data[slab:]); !errors.Is(err, context.Canceled) {
		t.Fatalf("post-cancel Write error = %v, want context.Canceled", err)
	}
	if err := enc.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v, want context.Canceled", err)
	}
	if got := int(events.Load()); got >= total {
		t.Fatalf("instrumentation saw %d of %d chunks after cancel; workers did not stop", got, total)
	}

	// The pool must stay healthy: a fresh uncancelled run round-trips.
	stream, _, err := CompressPWE(data, dims, 1e-3, opts)
	if err != nil {
		t.Fatalf("post-cancel compress: %v", err)
	}
	if _, _, err := Decompress(stream); err != nil {
		t.Fatalf("post-cancel decompress: %v", err)
	}
}

// TestEncoderContextPreCancelled: a context cancelled before any Write
// fails the very first Write.
func TestEncoderContextPreCancelled(t *testing.T) {
	data, dims := streamTestInput()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	enc, err := NewEncoderPWE(&buf, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	enc.SetContext(ctx)
	if _, err := enc.Write(data); !errors.Is(err, context.Canceled) {
		t.Fatalf("Write error = %v, want context.Canceled", err)
	}
	if err := enc.Close(); !errors.Is(err, context.Canceled) {
		t.Fatalf("Close error = %v, want context.Canceled", err)
	}
}

// TestDecoderContextCancel: cancelling from a chunk callback stops the
// streaming decode before the container drains.
func TestDecoderContextCancel(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	dec, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	dec.SetWorkers(2)
	dec.SetContext(ctx)
	total := dec.NumChunks()
	var delivered atomic.Int64
	err = dec.ForEachChunk(func(ch DecodedChunk) error {
		if delivered.Add(1) == 1 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachChunk error = %v, want context.Canceled", err)
	}
	if got := int(delivered.Load()); got >= total {
		t.Fatalf("%d of %d chunks delivered after cancel; decode did not stop", got, total)
	}

	// Uncancelled decode of the same stream still works end to end.
	rec, rdims, err := Decompress(stream)
	if err != nil || rdims != dims || len(rec) != len(data) {
		t.Fatalf("post-cancel decompress: %v", err)
	}
}

// TestDecoderContextPreCancelled: a context cancelled before ForEachChunk
// delivers nothing.
func TestDecoderContextPreCancelled(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dec, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	dec.SetContext(ctx)
	delivered := 0
	err = dec.ForEachChunk(func(DecodedChunk) error { delivered++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ForEachChunk error = %v, want context.Canceled", err)
	}
	if delivered != 0 {
		t.Fatalf("%d chunks delivered on a pre-cancelled decode", delivered)
	}
}
