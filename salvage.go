package sperr

import (
	"math"

	"sperr/internal/chunk"
)

// ErrorPolicy selects how a decode reacts to damaged frames. The default
// everywhere is fail-fast, the historical behavior: the first damaged
// byte aborts the decode with ErrCorrupt.
type ErrorPolicy = chunk.Policy

const (
	// FailFast aborts the decode on the first damaged byte.
	FailFast = chunk.PolicyFailFast
	// SkipChunk drops damaged chunks and keeps decoding the intact ones.
	SkipChunk = chunk.PolicySkip
	// FillChunk delivers fill-valued samples (NaN unless overridden) for
	// damaged chunks, preserving the volume's full extent.
	FillChunk = chunk.PolicyFill
)

// SalvageReport describes the outcome of a fault-tolerant decode: one
// ChunkOutcome per chunk (recovered, or skipped with a reason and the
// frame's byte range), whether the index footer was intact, and which
// byte ranges of the container could not be attributed to any verified
// frame.
type SalvageReport = chunk.SalvageReport

// ChunkOutcome is one chunk's entry in a SalvageReport.
type ChunkOutcome = chunk.ChunkOutcome

// DecompressSalvage reconstructs as much of a damaged stream as its
// intact frames allow. Where Decompress fails on the first damaged byte,
// DecompressSalvage locates every frame that still verifies — through the
// index footer when it survives, or by a resynchronizing scan of the
// frame region when the footer or the framing itself is damaged — and
// decodes exactly those; the samples of lost chunks are NaN. The report
// says which chunks were recovered and which were lost, and why. The
// error is non-nil only when the container's fixed header is unusable
// (without the geometry nothing can be attributed); all frame- and
// footer-level damage is absorbed into the report.
func DecompressSalvage(stream []byte) ([]float64, [3]int, *SalvageReport, error) {
	return DecompressSalvageWorkers(stream, math.NaN(), 0)
}

// DecompressSalvageWorkers is DecompressSalvage with an explicit fill
// value for lost chunks' samples and a worker budget (<= 0 means
// GOMAXPROCS).
func DecompressSalvageWorkers(stream []byte, fill float64, workers int) ([]float64, [3]int, *SalvageReport, error) {
	vol, rep, err := chunk.Salvage(stream, fill, workers)
	if err != nil {
		return nil, [3]int{}, nil, err
	}
	return vol.Data, [3]int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ}, rep, nil
}

// Audit verifies a stream's integrity without decoding any samples: every
// frame is checked against its CRC-32C (container v2) and its chunk
// header cross-checked against the geometry. In the returned report,
// Recovered means "verified recoverable". The `sperr fsck` command is a
// thin wrapper over this.
func Audit(stream []byte) (*SalvageReport, error) {
	return chunk.Audit(stream)
}

// Repair rewrites a damaged stream as a clean container v2: frames that
// verify are kept byte-for-byte (their chunks later decompress
// bit-identically), lost chunks are replaced by placeholder frames
// encoding all-zero samples, and the index footer is regenerated. v1
// input is upgraded to v2. The report describes the input's damage.
// Repair fails when the fixed header is unusable or no frame at all
// verified. The `sperr repair` command wraps this.
func Repair(stream []byte) ([]byte, *SalvageReport, error) {
	return chunk.Repair(stream)
}
