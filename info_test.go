package sperr

import "testing"

func TestDescribe(t *testing.T) {
	dims := [3]int{24, 24, 24}
	data := demoField(24, 24, 24, 23)
	tol := 0.01
	stream, st, err := CompressPWE(data, dims, tol, &Options{ChunkDims: [3]int{12, 12, 12}})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Dims != dims {
		t.Errorf("Dims = %v, want %v", fi.Dims, dims)
	}
	if fi.ChunkDims != [3]int{12, 12, 12} {
		t.Errorf("ChunkDims = %v", fi.ChunkDims)
	}
	if fi.NumChunks != 8 {
		t.Errorf("NumChunks = %d, want 8", fi.NumChunks)
	}
	if fi.CompressedBytes != len(stream) || fi.CompressedBytes != st.CompressedBytes {
		t.Errorf("CompressedBytes = %d, want %d", fi.CompressedBytes, len(stream))
	}
	if fi.Mode != "pwe" || fi.Tolerance != tol {
		t.Errorf("Mode/Tolerance = %q/%g", fi.Mode, fi.Tolerance)
	}
	if fi.Entropy {
		t.Error("Entropy should be false by default")
	}
	if fi.SpeckBits != st.SpeckBits || fi.OutlierBits != st.OutlierBits {
		t.Errorf("bit totals %d/%d, want %d/%d",
			fi.SpeckBits, fi.OutlierBits, st.SpeckBits, st.OutlierBits)
	}
}

func TestDescribeModes(t *testing.T) {
	dims := [3]int{16, 16, 16}
	data := demoField(16, 16, 16, 29)
	bppStream, _, err := CompressBPP(data, dims, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := Describe(bppStream)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Mode != "bpp" {
		t.Errorf("Mode = %q, want bpp", fi.Mode)
	}
	rmseStream, _, err := CompressRMSE(data, dims, 0.1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err = Describe(rmseStream); err != nil || fi.Mode != "rmse" {
		t.Errorf("Mode = %q (err %v), want rmse", fi.Mode, err)
	}
	acStream, _, err := CompressPWE(data, dims, 0.1, &Options{Entropy: true})
	if err != nil {
		t.Fatal(err)
	}
	if fi, err = Describe(acStream); err != nil || !fi.Entropy {
		t.Errorf("Entropy not reported (err %v)", err)
	}
	if _, err := Describe([]byte("nope")); err == nil {
		t.Error("garbage should fail")
	}
}
