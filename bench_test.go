package sperr

// This file is the benchmark harness for the paper's evaluation: one
// testing.B benchmark per table and figure (run with
// `go test -bench=. -benchmem`), each delegating to the corresponding
// driver in internal/experiments, plus end-to-end micro-benchmarks of the
// public API. DESIGN.md holds the experiment-to-module index and
// EXPERIMENTS.md the recorded paper-vs-measured outcomes. The experiment
// benchmarks run the Quick configuration so a full -bench=. sweep stays
// laptop-sized; cmd/sperrbench runs the full sweeps.

import (
	"bytes"
	"io"
	"math"
	"testing"

	"sperr/internal/experiments"
	"sperr/internal/grid"
	"sperr/internal/synth"
)

func benchCfg() experiments.Config {
	return experiments.Config{Dims: grid.D3(32, 32, 32), Seed: 2023, Quick: true}
}

func runExperiment(b *testing.B, drv func(experiments.Config) *experiments.Result) {
	b.Helper()
	cfg := benchCfg()
	for i := 0; i < b.N; i++ {
		r := drv(cfg)
		if len(r.Rows) == 0 {
			b.Fatalf("%s produced no rows", r.ID)
		}
		r.Print(io.Discard)
	}
}

// BenchmarkTableI regenerates Table I (idx -> tolerance translation).
func BenchmarkTableI(b *testing.B) { runExperiment(b, experiments.TableI) }

// BenchmarkTableII regenerates Table II (field/level abbreviations).
func BenchmarkTableII(b *testing.B) {
	runExperiment(b, func(experiments.Config) *experiments.Result { return experiments.TableII() })
}

// BenchmarkFigure1 regenerates Figure 1 (outlier spatial correlation).
func BenchmarkFigure1(b *testing.B) { runExperiment(b, experiments.Figure1) }

// BenchmarkFigure2 regenerates Figure 2 (coding cost vs q, U-shape).
func BenchmarkFigure2(b *testing.B) { runExperiment(b, experiments.Figure2) }

// BenchmarkFigure3 regenerates Figure 3 (bitrate and PSNR differences vs q).
func BenchmarkFigure3(b *testing.B) { runExperiment(b, experiments.Figure3) }

// BenchmarkFigure4 regenerates Figure 4 (bits-per-outlier vs q).
func BenchmarkFigure4(b *testing.B) { runExperiment(b, experiments.Figure4) }

// BenchmarkFigure5 regenerates Figure 5 (chunk size vs accuracy gain).
func BenchmarkFigure5(b *testing.B) { runExperiment(b, experiments.Figure5) }

// BenchmarkFigure6 regenerates Figure 6 (pipeline time breakdown).
func BenchmarkFigure6(b *testing.B) { runExperiment(b, experiments.Figure6) }

// BenchmarkFigure7 regenerates Figure 7 (strong scaling).
func BenchmarkFigure7(b *testing.B) { runExperiment(b, experiments.Figure7) }

// BenchmarkFigure8 regenerates Figure 8 (rate-distortion, five compressors).
func BenchmarkFigure8(b *testing.B) { runExperiment(b, experiments.Figure8) }

// BenchmarkFigure9 regenerates Figure 9 (bitrate to satisfy a PWE bound).
func BenchmarkFigure9(b *testing.B) { runExperiment(b, experiments.Figure9) }

// BenchmarkFigure10 regenerates Figure 10 (compression wall time).
func BenchmarkFigure10(b *testing.B) { runExperiment(b, experiments.Figure10) }

// BenchmarkFigure11 regenerates Figure 11 (outlier coder vs SZ quant bins).
func BenchmarkFigure11(b *testing.B) { runExperiment(b, experiments.Figure11) }

// BenchmarkAblationLossless measures the final lossless stage's saving.
func BenchmarkAblationLossless(b *testing.B) { runExperiment(b, experiments.AblationLossless) }

// BenchmarkAblationOutlierCoder compares outlier storage schemes.
func BenchmarkAblationOutlierCoder(b *testing.B) { runExperiment(b, experiments.AblationOutlierCoder) }

// BenchmarkAblationPredictor compares the SZ baseline's predictors.
func BenchmarkAblationPredictor(b *testing.B) { runExperiment(b, experiments.AblationPredictor) }

// BenchmarkAblationEntropy compares raw-bit SPECK with SPECK-AC.
func BenchmarkAblationEntropy(b *testing.B) { runExperiment(b, experiments.AblationEntropy) }

// BenchmarkAblationBitGroom compares SPERR with the bit-grooming floor.
func BenchmarkAblationBitGroom(b *testing.B) { runExperiment(b, experiments.AblationBitGroom) }

// BenchmarkAblationPartition compares root-octree and classic S/I SPECK.
func BenchmarkAblationPartition(b *testing.B) { runExperiment(b, experiments.AblationPartition) }

// --- end-to-end micro-benchmarks of the public API --------------------

func benchVolume(n int) []float64 {
	v := synth.MirandaVelocityX(grid.D3(n, n, n), 1)
	return v.Data
}

// BenchmarkCompressPWE64 measures the single-threaded pipeline: Workers
// is pinned to 1 so surplus workers do not silently turn on intra-chunk
// threading (BenchmarkCompressPWEIntra64 measures that).
func BenchmarkCompressPWE64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	opts := &Options{Workers: 1}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressPWEIntra64 is the same volume as a single chunk with a
// worker budget of 4: all parallelism is intra-chunk (threaded wavelet
// passes and outlier scan around the serial SPECK stage).
func BenchmarkCompressPWEIntra64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	opts := &Options{Workers: 4}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressBPP64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressBPP(data, [3]int{n, n, n}, 2, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	stream, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompressPWEParallel64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	opts := &Options{ChunkDims: [3]int{32, 32, 32}, Workers: 4}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompressPWEMultiChunk measures the steady-state allocation and
// throughput of the parallel chunk pipeline on a multi-chunk volume (8
// chunks of 48^3 inside 96^3 — the same shape as the paper's 256^3 volumes
// tiled by 128^3 chunks, scaled to benchmark size). Run with -benchmem:
// the scratch-arena pipeline should show near-zero per-chunk allocation
// once the worker pools warm up.
func BenchmarkCompressPWEMultiChunk(b *testing.B) {
	const n = 96
	data := benchVolume(n)
	for _, workers := range []int{1, 0} {
		name := "Workers=GOMAXPROCS"
		if workers == 1 {
			name = "Workers=1"
		}
		b.Run(name, func(b *testing.B) {
			opts := &Options{ChunkDims: [3]int{48, 48, 48}, Workers: workers}
			b.SetBytes(int64(len(data) * 8))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompressMultiChunk is the decode-side counterpart.
func BenchmarkDecompressMultiChunk(b *testing.B) {
	const n = 96
	data := benchVolume(n)
	opts := &Options{ChunkDims: [3]int{48, 48, 48}}
	stream, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decompress(stream); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressPartial64(b *testing.B) {
	const n = 64
	data := benchVolume(n)
	stream, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-4, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := DecompressPartial(stream, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

// Sanity anchor for the benchmarks above: the tolerance the micro-bench
// uses is meaningful for the synthetic field (not vacuously loose/tight).
func TestBenchToleranceSane(t *testing.T) {
	data := benchVolume(32)
	lo, hi := data[0], data[0]
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if r := hi - lo; r < 1 || r > 100 {
		t.Fatalf("bench field range %g unexpected", r)
	}
}

// BenchmarkStreamCompress measures the streaming Encoder fed plane by
// plane — the bounded-memory ingest path. Beyond throughput and allocs it
// reports peak-inflight-bytes: the maximum chunk samples resident in
// worker arenas, the quantity the engine promises to bound by
// workers x chunk size.
func BenchmarkStreamCompress(b *testing.B) {
	const n = 96
	data := benchVolume(n)
	plane := n * n
	opts := &Options{ChunkDims: [3]int{48, 48, 48}, Workers: 4}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	var peak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc, err := NewEncoderPWE(io.Discard, [3]int{n, n, n}, 1e-3, opts)
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < len(data); off += plane {
			if _, err := enc.Write(data[off : off+plane]); err != nil {
				b.Fatal(err)
			}
		}
		if err := enc.Close(); err != nil {
			b.Fatal(err)
		}
		if p := enc.PeakInFlightSamples() * 8; p > peak {
			peak = p
		}
	}
	b.ReportMetric(float64(peak), "peak-inflight-bytes")
}

// BenchmarkStreamDecompress measures the streaming Decoder draining
// chunks through the callback without assembling the volume, with the
// same peak-inflight-bytes metric on the decode side.
func BenchmarkStreamDecompress(b *testing.B) {
	const n = 96
	data := benchVolume(n)
	stream, _, err := CompressPWE(data, [3]int{n, n, n}, 1e-3,
		&Options{ChunkDims: [3]int{48, 48, 48}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(data) * 8))
	b.ReportAllocs()
	var peak int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec, err := NewDecoder(bytes.NewReader(stream))
		if err != nil {
			b.Fatal(err)
		}
		dec.SetWorkers(4)
		var sink float64
		err = dec.ForEachChunk(func(ch DecodedChunk) error {
			sink += ch.Data[0]
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if p := dec.PeakInFlightSamples() * 8; p > peak {
			peak = p
		}
		benchSink = sink
	}
	b.ReportMetric(float64(peak), "peak-inflight-bytes")
}

var benchSink float64
