package sperr

import (
	"encoding/binary"
	"strings"
	"testing"

	"sperr/internal/chunk"
)

// Deterministic adversarial-stream regressions backing the fuzz tier:
// every one of these inputs once mapped to a panic or an unbounded
// allocation class, and must now fail with a clean error.

// header builds a container header with the given seven u32 fields.
func containerHeader(fields ...uint32) []byte {
	return containerHeaderMagic("SPRRGO01", fields...)
}

func containerHeaderMagic(magic string, fields ...uint32) []byte {
	out := []byte(magic)
	for _, v := range fields {
		out = binary.LittleEndian.AppendUint32(out, v)
	}
	return out
}

func TestCorruptStreamsErrorNotPanic(t *testing.T) {
	valid, _, err := CompressPWE(demoField(20, 13, 9, 5), [3]int{20, 13, 9}, 1e-3,
		&Options{ChunkDims: [3]int{8, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"short header": []byte("SPRRGO0"),
		"bad magic":    append([]byte("NOTSPERR"), valid[8:]...),
		// 0xFFFFFFF0^3 points: the dims product overflows int64.
		"overflowing dims": append(containerHeader(0xFFFFFFF0, 0xFFFFFFF0, 0xFFFFFFF0, 1, 1, 1, 1), 0, 0, 0, 0),
		// A large but non-overflowing volume must hit the decode cap.
		"capped volume": append(containerHeader(4096, 4096, 1, 4096, 4096, 1, 1), 0, 0, 0, 0),
		// Claimed chunk count cannot fit in the remaining bytes.
		"chunk count beyond stream": append(containerHeader(16, 16, 16, 8, 8, 8, 0xFFFFFF), 0, 0, 0, 0),
		// Chunk count disagrees with the declared geometry.
		"wrong chunk count": append(containerHeader(16, 16, 16, 8, 8, 8, 3), 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0),
		"truncated first frame": valid[:8+4*7+2],
		"truncated payload":     valid[:len(valid)-3],
		// v2-specific header damage: right magic, hostile fields.
		"v2 bare header":       append(containerHeaderMagic("SPRRGO02", 16, 16, 16, 8, 8, 8, 8), 0, 0, 0, 0),
		"v2 overflowing dims":  append(containerHeaderMagic("SPRRGO02", 0xFFFFFFF0, 0xFFFFFFF0, 0xFFFFFFF0, 1, 1, 1, 1), 0, 0, 0, 0),
		"v2 wrong chunk count": append(containerHeaderMagic("SPRRGO02", 16, 16, 16, 8, 8, 8, 3), make([]byte, 256)...),
		"v2 zeroed tail":       append(append([]byte(nil), valid[:len(valid)-20]...), make([]byte, 20)...),
	}
	old := chunk.MaxDecodePoints
	chunk.MaxDecodePoints = 1 << 22
	defer func() { chunk.MaxDecodePoints = old }()
	for name, in := range cases {
		if _, _, err := Decompress(in); err == nil {
			t.Errorf("%s: Decompress accepted corrupt input", name)
		}
		if _, err := Describe(in); err == nil {
			t.Errorf("%s: Describe accepted corrupt input", name)
		}
		if _, _, err := DecompressPartial(in, 0.5); err == nil {
			t.Errorf("%s: DecompressPartial accepted corrupt input", name)
		}
	}
}

// Bit-level damage inside chunk payloads must never panic: it either
// fails the lossless/codec validation or decodes to garbage of the
// declared shape.
func TestBitFlippedPayloadsNoPanic(t *testing.T) {
	valid, _, err := CompressPWE(demoField(20, 13, 9, 5), [3]int{20, 13, 9}, 1e-3,
		&Options{ChunkDims: [3]int{8, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	for pos := 0; pos < len(valid); pos += 3 {
		for _, mask := range []byte{0x01, 0x80} {
			mut := append([]byte(nil), valid...)
			mut[pos] ^= mask
			rec, dims, err := Decompress(mut)
			if err == nil && len(rec) != dims[0]*dims[1]*dims[2] {
				t.Fatalf("flip @%d/%#x: shape mismatch %d vs %v", pos, mask, len(rec), dims)
			}
			if _, err := Describe(mut); err != nil &&
				strings.Contains(err.Error(), "panic") {
				t.Fatalf("flip @%d/%#x: %v", pos, mask, err)
			}
		}
	}
}
