package sperr

// Tests of the streaming Encoder/Decoder engine: byte-equivalence with
// the one-shot wrappers at every Write granularity and worker count,
// bounded in-flight memory, v2 corruption handling, and Reset reuse.

import (
	"bytes"
	"errors"
	"math"
	"sync"
	"testing"
)

func streamTestInput() ([]float64, [3]int) {
	return demoField(40, 30, 20, 11), [3]int{40, 30, 20}
}

// TestEncoderMatchesOneShot: feeding the Encoder in any granularity, at
// any worker count, must produce the exact bytes of the one-shot wrapper.
func TestEncoderMatchesOneShot(t *testing.T) {
	data, dims := streamTestInput()
	opts := &Options{ChunkDims: [3]int{16, 16, 16}}
	want, _, err := CompressPWE(data, dims, 1e-3, opts)
	if err != nil {
		t.Fatal(err)
	}
	grains := map[string]int{
		"whole volume": len(data),
		"one slab":     dims[0] * dims[1] * 16,
		"one plane":    dims[0] * dims[1],
		"one row":      dims[0],
		"ragged 1009":  1009,
		"ragged 7":     7,
	}
	for name, grain := range grains {
		for _, workers := range []int{1, 2, 7} {
			var buf bytes.Buffer
			o := *opts
			o.Workers = workers
			enc, err := NewEncoderPWE(&buf, dims, 1e-3, &o)
			if err != nil {
				t.Fatal(err)
			}
			for off := 0; off < len(data); off += grain {
				end := off + grain
				if end > len(data) {
					end = len(data)
				}
				if _, err := enc.Write(data[off:end]); err != nil {
					t.Fatalf("%s workers=%d: %v", name, workers, err)
				}
			}
			if err := enc.Close(); err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Fatalf("%s workers=%d: stream differs from one-shot (%d vs %d bytes)",
					name, workers, buf.Len(), len(want))
			}
			if st := enc.Stats(); st == nil || st.CompressedBytes != len(want) {
				t.Fatalf("%s workers=%d: stats %+v", name, workers, enc.Stats())
			}
		}
	}
}

// TestEncoderReset: a Reset Encoder reuses its state and still produces
// identical bytes.
func TestEncoderReset(t *testing.T) {
	data, dims := streamTestInput()
	opts := &Options{ChunkDims: [3]int{16, 16, 16}, Workers: 3}
	var first, second bytes.Buffer
	enc, err := NewEncoderPWE(&first, dims, 1e-3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := enc.Reset(&second, dims); err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Fatal("Reset encoder produced different bytes")
	}
}

// TestEncoderShortFeed: closing before the declared volume is fed must
// fail, not emit a truncated container.
func TestEncoderShortFeed(t *testing.T) {
	data, dims := streamTestInput()
	var buf bytes.Buffer
	enc, err := NewEncoderPWE(&buf, dims, 1e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.Write(data[:len(data)/2]); err != nil {
		t.Fatal(err)
	}
	if err := enc.Close(); err == nil {
		t.Fatal("Close accepted a half-fed volume")
	}
	// Overfeeding must fail too.
	enc2, err := NewEncoderPWE(&buf, dims, 1e-3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc2.Write(data); err != nil {
		t.Fatal(err)
	}
	if _, err := enc2.Write(data[:1]); err == nil {
		t.Fatal("Write accepted samples beyond the volume")
	}
	enc2.Close()
}

// TestDecoderMatchesOneShot: the streaming Decoder reconstructs exactly
// what the one-shot Decompress does, at several worker budgets.
func TestDecoderMatchesOneShot(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	want, wdims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5} {
		dec, err := NewDecoder(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		dec.SetWorkers(workers)
		got, gdims, err := dec.DecodeAll()
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if gdims != wdims {
			t.Fatalf("workers=%d: dims %v vs %v", workers, gdims, wdims)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: sample %d differs", workers, i)
			}
		}
	}
}

// TestDecoderBoundedMemory: the streaming decode must hold at most
// workers x chunk size decoded samples in flight — the tentpole's
// bounded-memory guarantee, asserted via the engine's own instrumentation.
func TestDecoderBoundedMemory(t *testing.T) {
	data, dims := streamTestInput() // 40x30x20 over 16^3 chunks: 12 chunks
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	const chunkSamples = 16 * 16 * 16
	for _, workers := range []int{1, 2, 4} {
		dec, err := NewDecoder(bytes.NewReader(stream))
		if err != nil {
			t.Fatal(err)
		}
		dec.SetWorkers(workers)
		if err := dec.ForEachChunk(func(DecodedChunk) error { return nil }); err != nil {
			t.Fatal(err)
		}
		peak := dec.PeakInFlightSamples()
		if peak == 0 {
			t.Fatalf("workers=%d: peak accounting missing", workers)
		}
		if bound := workers * chunkSamples; peak > bound {
			t.Fatalf("workers=%d: peak %d samples in flight exceeds bound %d",
				workers, peak, bound)
		}
	}
}

// TestEncoderBoundedMemory is the encode-side counterpart: chunk samples
// held in worker arenas never exceed workers x chunk size.
func TestEncoderBoundedMemory(t *testing.T) {
	data, dims := streamTestInput()
	const chunkSamples = 16 * 16 * 16
	for _, workers := range []int{1, 3} {
		var buf bytes.Buffer
		enc, err := NewEncoderPWE(&buf, dims, 1e-3, &Options{
			ChunkDims: [3]int{16, 16, 16}, Workers: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := enc.Write(data); err != nil {
			t.Fatal(err)
		}
		if err := enc.Close(); err != nil {
			t.Fatal(err)
		}
		peak := enc.PeakInFlightSamples()
		if peak == 0 {
			t.Fatalf("workers=%d: peak accounting missing", workers)
		}
		if bound := workers * chunkSamples; peak > bound {
			t.Fatalf("workers=%d: peak %d samples exceeds bound %d", workers, peak, bound)
		}
	}
}

// TestDecoderChunkDelivery: ForEachChunk visits every chunk exactly once
// with correct geometry, and the delivered samples satisfy the PWE bound.
func TestDecoderChunkDelivery(t *testing.T) {
	data, dims := streamTestInput()
	tol := 1e-3
	stream, _, err := CompressPWE(data, dims, tol, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		t.Fatal(err)
	}
	if dec.FormatVersion() != 2 {
		t.Fatalf("fresh stream is version %d, want 2", dec.FormatVersion())
	}
	if dec.NumChunks() != 12 {
		t.Fatalf("NumChunks = %d, want 12", dec.NumChunks())
	}
	seen := make([]bool, dec.NumChunks())
	var mu sync.Mutex
	err = dec.ForEachChunk(func(ch DecodedChunk) error {
		if len(ch.Data) != ch.Dims[0]*ch.Dims[1]*ch.Dims[2] {
			t.Errorf("chunk %d: %d samples for %v", ch.Index, len(ch.Data), ch.Dims)
		}
		for z := 0; z < ch.Dims[2]; z++ {
			for y := 0; y < ch.Dims[1]; y++ {
				for x := 0; x < ch.Dims[0]; x++ {
					got := ch.Data[(z*ch.Dims[1]+y)*ch.Dims[0]+x]
					want := data[((ch.Origin[2]+z)*dims[1]+ch.Origin[1]+y)*dims[0]+ch.Origin[0]+x]
					if math.Abs(got-want) > tol*(1+1e-9) {
						t.Errorf("chunk %d: tolerance violated at (%d,%d,%d)", ch.Index, x, y, z)
						return nil
					}
				}
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if seen[ch.Index] {
			t.Errorf("chunk %d delivered twice", ch.Index)
		}
		seen[ch.Index] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ok := range seen {
		if !ok {
			t.Fatalf("chunk %d never delivered", i)
		}
	}
	// A consumed Decoder must refuse a second pass.
	if err := dec.ForEachChunk(func(DecodedChunk) error { return nil }); err == nil {
		t.Fatal("second ForEachChunk succeeded")
	}
}

// TestV2CorruptionDetected: frame truncation, payload damage, and index
// damage must all surface as ErrCorrupt — never a panic or a silent
// wrong answer.
func TestV2CorruptionDetected(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(pos int, mask byte) []byte {
		mut := append([]byte(nil), stream...)
		mut[pos] ^= mask
		return mut
	}
	cases := map[string][]byte{
		"truncated mid-frame":    stream[:60],
		"truncated before index": stream[:len(stream)-30],
		"flipped payload bit":    mutate(50, 0x10),
		"flipped index magic":    mutate(len(stream)-1, 0x01),
		"flipped index offset":   mutate(len(stream)-12, 0x01),
		"flipped index body":     mutate(len(stream)-40, 0x01),
	}
	for name, in := range cases {
		if _, _, err := Decompress(in); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decompress returned %v, want ErrCorrupt", name, err)
		}
		dec, err := NewDecoder(bytes.NewReader(in))
		if err == nil {
			err = dec.ForEachChunk(func(DecodedChunk) error { return nil })
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: streaming decode returned %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDescribeSkipsFramesOnV2: Describe answers from the header and index
// footer alone, so damage confined to a frame payload must not disturb it
// — the structural proof that v2 inspection is header/footer-only.
func TestDescribeSkipsFramesOnV2(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if clean.Version != 2 || len(clean.FrameBytes) != clean.NumChunks {
		t.Fatalf("Describe: %+v", clean)
	}
	var total int
	for _, n := range clean.FrameBytes {
		total += n
	}
	if total <= 0 || total >= clean.CompressedBytes {
		t.Fatalf("frame bytes %d vs container %d", total, clean.CompressedBytes)
	}
	// Damage a payload byte mid-frame: Decompress must reject it, Describe
	// must not even notice.
	mut := append([]byte(nil), stream...)
	mut[60] ^= 0x40
	if _, _, err := Decompress(mut); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("payload damage: Decompress returned %v", err)
	}
	dirty, err := Describe(mut)
	if err != nil {
		t.Fatalf("Describe touched a frame payload: %v", err)
	}
	if dirty.Mode != clean.Mode || dirty.SpeckBits != clean.SpeckBits {
		t.Fatalf("Describe drifted under payload damage: %+v vs %+v", dirty, clean)
	}
}

// TestRegionDecodesOnDamagedV2: region decode must succeed when the
// damage sits in a frame the region never touches — lazy per-frame
// verification is what makes index-seek decoding pay off.
func TestRegionDecodesOnDamagedV2(t *testing.T) {
	data, dims := streamTestInput()
	stream, _, err := CompressPWE(data, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	// Chunk 0's frame starts right after the 36-byte header; damage it.
	mut := append([]byte(nil), stream...)
	mut[60] ^= 0x40
	// A region inside the last chunk (origin 32,16,16) avoids chunk 0.
	if _, err := DecompressRegion(mut, [3]int{33, 17, 17}, [3]int{4, 4, 2}); err != nil {
		t.Fatalf("region avoiding the damaged chunk failed: %v", err)
	}
	// A region inside chunk 0 must hit the checksum.
	if _, err := DecompressRegion(mut, [3]int{0, 0, 0}, [3]int{4, 4, 2}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("region in the damaged chunk returned %v, want ErrCorrupt", err)
	}
}
