package sperr

import (
	"math"
	"math/rand"
	"testing"
)

func demoField(nx, ny, nz int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([]float64, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				data[i] = 50*math.Sin(0.15*float64(x))*math.Cos(0.1*float64(y))*
					math.Cos(0.12*float64(z)) + rng.NormFloat64()
				i++
			}
		}
	}
	return data
}

func TestCompressPWERoundTrip(t *testing.T) {
	dims := [3]int{32, 32, 32}
	data := demoField(32, 32, 32, 1)
	tol := 0.01
	stream, st, err := CompressPWE(data, dims, tol, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumPoints != len(data) || st.CompressedBytes != len(stream) {
		t.Errorf("stats inconsistent: %+v", st)
	}
	if st.BPP >= 64 {
		t.Errorf("no compression achieved: %g BPP", st.BPP)
	}
	rec, gotDims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v, want %v", gotDims, dims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
			t.Fatalf("idx %d: error %g > tol", i, math.Abs(rec[i]-data[i]))
		}
	}
}

func TestCompressBPPRoundTrip(t *testing.T) {
	dims := [3]int{32, 32, 16}
	data := demoField(32, 32, 16, 2)
	stream, st, err := CompressBPP(data, dims, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.BPP > 4.6 {
		t.Errorf("target 4 BPP, achieved %g", st.BPP)
	}
	if _, _, err := Decompress(stream); err != nil {
		t.Fatal(err)
	}
}

func TestMultiChunkOptions(t *testing.T) {
	dims := [3]int{40, 40, 40}
	data := demoField(40, 40, 40, 3)
	tol := 0.05
	stream, st, err := CompressPWE(data, dims, tol, &Options{
		ChunkDims: [3]int{16, 16, 16},
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks != 27 {
		t.Errorf("NumChunks = %d, want 27", st.NumChunks)
	}
	rec, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
			t.Fatalf("idx %d: error exceeds tol", i)
		}
	}
}

func Test2DSlice(t *testing.T) {
	dims := [3]int{64, 64, 1}
	data := demoField(64, 64, 1, 4)
	stream, _, err := CompressPWE(data, dims, 0.001, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, gotDims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if gotDims != dims {
		t.Fatalf("dims %v", gotDims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > 0.001*(1+1e-9) {
			t.Fatalf("2D error exceeds tol at %d", i)
		}
	}
}

func TestFloat32Path(t *testing.T) {
	dims := [3]int{16, 16, 16}
	data64 := demoField(16, 16, 16, 5)
	data := make([]float32, len(data64))
	for i, v := range data64 {
		data[i] = float32(v)
	}
	tol := 0.01
	stream, _, err := CompressPWEFloat32(data, dims, tol, nil)
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := DecompressFloat32(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(float64(rec[i])-float64(data[i])) > tol*(1+1e-6) {
			t.Fatalf("idx %d: f32 error exceeds tol", i)
		}
	}
}

func TestInputValidation(t *testing.T) {
	data := make([]float64, 8)
	if _, _, err := CompressPWE(data, [3]int{2, 2, 2}, 0, nil); err == nil {
		t.Error("zero tolerance should fail")
	}
	if _, _, err := CompressPWE(data, [3]int{3, 3, 3}, 1, nil); err == nil {
		t.Error("dims mismatch should fail")
	}
	if _, _, err := CompressBPP(data, [3]int{2, 2, 2}, -1, nil); err == nil {
		t.Error("negative rate should fail")
	}
	if _, _, err := Decompress([]byte("bogus")); err == nil {
		t.Error("bogus stream should fail")
	}
}

func TestQFactorOption(t *testing.T) {
	dims := [3]int{24, 24, 24}
	data := demoField(24, 24, 24, 6)
	tol := 0.01
	for _, qf := range []float64{1.0, 1.5, 2.5} {
		stream, _, err := CompressPWE(data, dims, tol, &Options{QFactor: qf})
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > tol*(1+1e-9) {
				t.Fatalf("qf=%g: error exceeds tol at %d", qf, i)
			}
		}
	}
}
