// Command clustersmoke is the `make cluster-smoke` harness: it builds
// the sperrd binary, boots a three-node cluster on kernel-assigned
// localhost ports, ingests both golden fixtures (container v2 and v3)
// through different coordinators, reads cross-shard regions through
// every node and requires the bytes to be bit-identical to a
// single-node in-process decode, then SIGKILLs one peer mid-cluster and
// requires the next read to degrade (200 + fill value + "degraded"
// status trailer) instead of failing, with the cluster counters on
// /metrics recording the casualty. Exit status 0 means the cluster
// shards, gathers, degrades, and measures.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"sperr"
	"sperr/internal/cluster"
	"sperr/internal/rawio"
)

var nodeIDs = []string{"node-a", "node-b", "node-c"}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "cluster-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("cluster-smoke: OK")
}

type node struct {
	id   string
	url  string
	cmd  *exec.Cmd
	done chan error
}

func run() error {
	tmp, err := os.MkdirTemp("", "sperrd-cluster-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "sperrd")

	fmt.Println("cluster-smoke: building sperrd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sperrd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build sperrd: %w", err)
	}

	// The roster must be known before any peer boots, so reserve three
	// kernel-assigned ports up front and release them just before use.
	addrs, err := reservePorts(len(nodeIDs))
	if err != nil {
		return err
	}
	roster := make([]string, len(nodeIDs))
	for i, id := range nodeIDs {
		roster[i] = fmt.Sprintf("%s=http://%s", id, addrs[i])
	}
	peersFlag := strings.Join(roster, ",")

	nodes := make([]*node, len(nodeIDs))
	for i, id := range nodeIDs {
		n, err := startNode(bin, tmp, id, addrs[i], peersFlag)
		if err != nil {
			return err
		}
		nodes[i] = n
		defer n.cmd.Process.Kill()
	}
	for _, n := range nodes {
		if err := waitHealthy(n); err != nil {
			return err
		}
	}
	fmt.Printf("cluster-smoke: %d peers up (%s)\n", len(nodes), peersFlag)

	// Ingest both golden fixtures — a v2 PWE container and a v3 adaptive
	// container — through different coordinators, and read cross-shard
	// regions back through every node. Each read must match an
	// in-process single-node decode byte for byte.
	fixtures := []struct {
		path        string
		coordinator int
	}{
		{"testdata/golden_pwe_24x17x9_v2.sperr", 0},
		{"testdata/golden_adaptive_48x32x32_v3.sperr", 1},
	}
	var v3id string
	var v3info *sperr.StreamInfo
	for _, fx := range fixtures {
		container, err := os.ReadFile(fx.path)
		if err != nil {
			return fmt.Errorf("read fixture: %w", err)
		}
		info, err := sperr.Describe(container)
		if err != nil {
			return fmt.Errorf("describe %s: %w", fx.path, err)
		}
		id, err := ingest(nodes[fx.coordinator].url, container)
		if err != nil {
			return fmt.Errorf("ingest %s via %s: %w", fx.path, nodes[fx.coordinator].id, err)
		}
		fmt.Printf("cluster-smoke: ingested %s as %s.. via %s (%d chunks)\n",
			filepath.Base(fx.path), id[:12], nodes[fx.coordinator].id, info.NumChunks)
		if strings.Contains(fx.path, "_v3") {
			v3id, v3info = id, info
		}

		// Two regions per fixture: the full volume (touches every chunk,
		// so certainly cross-shard) and an interior box straddling chunk
		// boundaries on every axis.
		regions := [][2][3]int{
			{{0, 0, 0}, info.Dims},
			{{1, 2, 3}, {info.Dims[0] - 2, info.Dims[1] - 4, info.Dims[2] - 4}},
		}
		for _, reg := range regions {
			origin, dims := reg[0], reg[1]
			want, err := sperr.DecompressRegion(container, origin, dims)
			if err != nil {
				return fmt.Errorf("reference decode: %w", err)
			}
			wantRaw, err := rawio.EncodeFloats(want, 8)
			if err != nil {
				return err
			}
			for _, n := range nodes {
				url := fmt.Sprintf("%s/v1/volumes/%s/region?region=%d,%d,%d,%d,%d,%d",
					n.url, id, origin[0], origin[1], origin[2], dims[0], dims[1], dims[2])
				got, trailer, answeredBy, err := getRegion(url)
				if err != nil {
					return fmt.Errorf("region via %s: %w", n.id, err)
				}
				if trailer != "ok" {
					return fmt.Errorf("region via %s: trailer %q, want ok", n.id, trailer)
				}
				if answeredBy != n.id {
					return fmt.Errorf("region via %s: X-Sperr-Node says %q", n.id, answeredBy)
				}
				if !bytes.Equal(got, wantRaw) {
					return fmt.Errorf("region %v+%v via %s: %d bytes differ from single-node decode",
						origin, dims, n.id, len(got))
				}
			}
		}
		fmt.Printf("cluster-smoke: %s reads bit-identical through all %d coordinators\n",
			filepath.Base(fx.path), len(nodes))
	}

	// Every coordinator has done remote fetches by now; its per-peer
	// request counters must show them.
	metrics, err := scrape(nodes[0].url)
	if err != nil {
		return err
	}
	for _, peer := range nodeIDs[1:] {
		series := fmt.Sprintf(`sperrd_cluster_requests_total{peer="%s",outcome="ok"}`, peer)
		if !strings.Contains(metrics, series) {
			return fmt.Errorf("node-a /metrics missing %s", series)
		}
	}

	// Kill one peer with SIGKILL — no drain, no goodbye — and require
	// the next cross-shard read to degrade instead of erroring. The
	// victim is a non-coordinator owner of at least one v3 chunk,
	// computed from the same ring the daemons use (placement is a pure
	// function of roster + content address).
	ring, err := cluster.NewRing(nodeIDs, 0)
	if err != nil {
		return err
	}
	placement := ring.Placement(v3id, v3info.NumChunks)
	victim := -1
	for i := 1; i < len(nodes); i++ { // never the coordinator we read through
		if len(placement[nodes[i].id]) > 0 {
			victim = i
			break
		}
	}
	if victim < 0 {
		return fmt.Errorf("no non-coordinator peer owns v3 chunks (placement %v)", placement)
	}
	lost := placement[nodes[victim].id]
	fmt.Printf("cluster-smoke: SIGKILL %s (owns v3 chunks %v)\n", nodes[victim].id, lost)
	if err := nodes[victim].cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill %s: %w", nodes[victim].id, err)
	}
	<-nodes[victim].done

	url := fmt.Sprintf("%s/v1/volumes/%s/region?region=0,0,0,%d,%d,%d",
		nodes[0].url, v3id, v3info.Dims[0], v3info.Dims[1], v3info.Dims[2])
	got, trailer, _, err := getRegion(url)
	if err != nil {
		return fmt.Errorf("degraded read must not fail: %w", err)
	}
	if !strings.HasPrefix(trailer, "degraded: skipped ") {
		return fmt.Errorf("post-kill read trailer %q, want degraded status", trailer)
	}
	skipped := parseSkipped(trailer)
	if len(skipped) == 0 {
		return fmt.Errorf("degraded trailer names no chunks: %q", trailer)
	}
	for _, ci := range skipped {
		if !contains(lost, ci) {
			return fmt.Errorf("skipped chunk %d is not owned by the killed peer (owns %v)", ci, lost)
		}
	}

	// The fill policy marks lost cells NaN; cells of surviving chunks
	// must still match the reference decode exactly.
	container, err := os.ReadFile(fixtures[1].path)
	if err != nil {
		return err
	}
	want, err := sperr.DecompressRegion(container, [3]int{0, 0, 0}, v3info.Dims)
	if err != nil {
		return err
	}
	nans, mismatches := 0, 0
	for i := range want {
		v := math.Float64frombits(binary.LittleEndian.Uint64(got[i*8:]))
		inLost := contains(skipped, chunkIndexOf(i, v3info.Dims, v3info.ChunkDims))
		switch {
		case inLost && math.IsNaN(v):
			nans++
		case inLost:
			return fmt.Errorf("sample %d in a skipped chunk is %v, want NaN", i, v)
		case v != want[i]:
			mismatches++
		}
	}
	if nans == 0 {
		return fmt.Errorf("degraded read filled no samples")
	}
	if mismatches > 0 {
		return fmt.Errorf("%d surviving samples differ from the single-node decode", mismatches)
	}
	fmt.Printf("cluster-smoke: degraded read ok (%d chunks skipped, %d samples NaN-filled, survivors bit-identical)\n",
		len(skipped), nans)

	// The casualty must be visible on the coordinator's metrics surface.
	metrics, err = scrape(nodes[0].url)
	if err != nil {
		return err
	}
	if v := metricValue(metrics, "sperrd_cluster_degraded_total"); v < 1 {
		return fmt.Errorf("sperrd_cluster_degraded_total is %g, want >= 1", v)
	}
	if v := metricValue(metrics, "sperrd_cluster_filled_chunks_total"); v < float64(len(skipped)) {
		return fmt.Errorf("sperrd_cluster_filled_chunks_total is %g, want >= %d", v, len(skipped))
	}
	failSeries := []string{
		fmt.Sprintf(`sperrd_cluster_requests_total{peer="%s",outcome="error"}`, nodes[victim].id),
		fmt.Sprintf(`sperrd_cluster_requests_total{peer="%s",outcome="timeout"}`, nodes[victim].id),
	}
	if !strings.Contains(metrics, failSeries[0]) && !strings.Contains(metrics, failSeries[1]) {
		return fmt.Errorf("/metrics missing a failed-peer outcome counter for %s", nodes[victim].id)
	}
	fmt.Println("cluster-smoke: cluster counters account for the killed peer")

	// The survivors drain cleanly.
	for i, n := range nodes {
		if i == victim {
			continue
		}
		if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("signal %s: %w", n.id, err)
		}
		select {
		case err := <-n.done:
			if err != nil {
				return fmt.Errorf("%s exited non-zero after SIGTERM: %v", n.id, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("%s did not exit within 15s of SIGTERM", n.id)
		}
	}
	fmt.Println("cluster-smoke: graceful shutdown ok")
	return nil
}

// reservePorts grabs n kernel-assigned localhost ports and releases
// them, returning the addresses for the daemons to re-bind. The tiny
// reuse race is acceptable in a smoke harness.
func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startNode(bin, tmp, id, addr, peers string) (*node, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-store-dir", filepath.Join(tmp, "store-"+id),
		"-node-id", id,
		"-peers", peers,
		"-peer-timeout", "2s",
		"-hedge-after", "100ms",
		"-budget-mb", "64",
		// This smoke pins the single-replica degradation contract; the
		// replicated failover path has its own harness (chaossmoke).
		"-replicas", "1",
		"-scrub-interval", "-1s",
		"-quiet")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", id, err)
	}
	n := &node{id: id, url: "http://" + addr, cmd: cmd, done: make(chan error, 1)}
	go func() { n.done <- cmd.Wait() }()
	return n, nil
}

func waitHealthy(n *node) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-n.done:
			return fmt.Errorf("%s exited before healthy: %v", n.id, err)
		default:
		}
		res, err := http.Get(n.url + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy", n.id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func ingest(base string, container []byte) (string, error) {
	req, err := http.NewRequest("PUT", base+"/v1/volumes", bytes.NewReader(container))
	if err != nil {
		return "", err
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	out, _ := io.ReadAll(res.Body)
	if res.StatusCode != 201 && res.StatusCode != 200 {
		return "", fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	id := res.Header.Get("X-Sperr-Volume-Id")
	if id == "" {
		return "", fmt.Errorf("missing X-Sperr-Volume-Id header")
	}
	return id, nil
}

// getRegion fetches a region URL, returning the body, the X-Sperr-Status
// trailer, and the X-Sperr-Node header.
func getRegion(url string) (body []byte, trailer, nodeID string, err error) {
	res, err := http.Get(url)
	if err != nil {
		return nil, "", "", err
	}
	defer res.Body.Close()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, "", "", err
	}
	if res.StatusCode != 200 {
		return nil, "", "", fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	ts := res.Trailer.Get("X-Sperr-Status")
	if ts == "" {
		ts = res.Header.Get("X-Sperr-Status")
	}
	return out, ts, res.Header.Get("X-Sperr-Node"), nil
}

func scrape(base string) (string, error) {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	text, err := io.ReadAll(res.Body)
	return string(text), err
}

// metricValue extracts one series' value from scraped metrics text
// (zero when absent).
func metricValue(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v
		}
	}
	return 0
}

// parseSkipped pulls the chunk indices out of a
// "degraded: skipped 3,7,12" trailer.
func parseSkipped(trailer string) []int {
	list := strings.TrimPrefix(trailer, "degraded: skipped ")
	// A "; unreachable <peers>" suffix may name the dead peers.
	if i := strings.IndexByte(list, ';'); i >= 0 {
		list = list[:i]
	}
	var out []int
	for _, f := range strings.Split(list, ",") {
		var ci int
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%d", &ci); err == nil {
			out = append(out, ci)
		}
	}
	sort.Ints(out)
	return out
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// chunkIndexOf maps a row-major sample index of the full volume to its
// chunk index in the engine's z-major chunk grid.
func chunkIndexOf(i int, dims, chunkDims [3]int) int {
	x := i % dims[0]
	y := i / dims[0] % dims[1]
	z := i / (dims[0] * dims[1])
	nxc := (dims[0] + chunkDims[0] - 1) / chunkDims[0]
	nyc := (dims[1] + chunkDims[1] - 1) / chunkDims[1]
	return (z/chunkDims[2]*nyc+y/chunkDims[1])*nxc + x/chunkDims[0]
}
