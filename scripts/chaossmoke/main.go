// Command chaossmoke is the `make chaos-smoke` harness: the replication
// and self-healing counterpart to clustersmoke. It builds sperrd, boots
// a three-node cluster with -replicas=2 and a fast anti-entropy
// scrubber, ingests the golden v3 fixture, then runs three acts:
//
//  1. Failover: SIGKILL a peer that primary-owns chunks while reads are
//     in flight, and require every read — during and after the kill —
//     to answer 200 with an "ok" trailer (NOT degraded) and bytes
//     bit-identical to a single-node in-process decode, with
//     sperrd_replica_failover_chunks_total recording the reroute.
//  2. Rejoin: restart the victim as a replacement peer with an empty
//     store and require its scrubber to converge to full ownership of
//     its ring share without any operator action.
//  3. Bit-rot: corrupt a shard blob on a live peer's disk and require
//     that peer's scrubber to detect and repair it within a deadline —
//     without any client read touching the volume in between — with
//     sperrd_scrub_damaged_chunks_total / _repaired_chunks_total as
//     witnesses, then require full-volume reads through every
//     coordinator to come back non-degraded and bit-identical.
//
// The harness prints each act's convergence time; exit status 0 means
// the cluster replicates, fails over, rejoins, and heals.
package main

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"sperr"
	"sperr/internal/cluster"
	"sperr/internal/rawio"
)

var nodeIDs = []string{"node-a", "node-b", "node-c"}

const (
	replicas      = 2
	scrubEvery    = 300 * time.Millisecond
	scrubDeadline = 30 * time.Second
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "chaos-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("chaos-smoke: OK")
}

type node struct {
	id       string
	url      string
	addr     string
	storeDir string
	cmd      *exec.Cmd
	done     chan error
}

func run() error {
	tmp, err := os.MkdirTemp("", "sperrd-chaos-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "sperrd")

	fmt.Println("chaos-smoke: building sperrd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sperrd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build sperrd: %w", err)
	}

	addrs, err := reservePorts(len(nodeIDs))
	if err != nil {
		return err
	}
	roster := make([]string, len(nodeIDs))
	for i, id := range nodeIDs {
		roster[i] = fmt.Sprintf("%s=http://%s", id, addrs[i])
	}
	peersFlag := strings.Join(roster, ",")

	nodes := make([]*node, len(nodeIDs))
	for i, id := range nodeIDs {
		n, err := startNode(bin, filepath.Join(tmp, "store-"+id), id, addrs[i], peersFlag)
		if err != nil {
			return err
		}
		nodes[i] = n
		defer n.cmd.Process.Kill()
	}
	for _, n := range nodes {
		if err := waitHealthy(n); err != nil {
			return err
		}
	}
	fmt.Printf("chaos-smoke: %d peers up with %d replicas per chunk (%s)\n",
		len(nodes), replicas, peersFlag)

	container, err := os.ReadFile("testdata/golden_adaptive_48x32x32_v3.sperr")
	if err != nil {
		return fmt.Errorf("read fixture: %w", err)
	}
	info, err := sperr.Describe(container)
	if err != nil {
		return err
	}
	id, err := ingest(nodes[0].url, container)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	want, err := sperr.DecompressRegion(container, [3]int{0, 0, 0}, info.Dims)
	if err != nil {
		return err
	}
	wantRaw, err := rawio.EncodeFloats(want, 8)
	if err != nil {
		return err
	}
	fmt.Printf("chaos-smoke: ingested %s.. (%d chunks)\n", id[:12], info.NumChunks)

	// The placement ring is a pure function of roster + content address,
	// so the harness can compute every chunk's replica set exactly as
	// the daemons do.
	ring, err := cluster.NewRing(nodeIDs, 0)
	if err != nil {
		return err
	}
	desired := func(peer string) []int {
		var out []int
		for ci := 0; ci < info.NumChunks; ci++ {
			for _, p := range ring.Owners(cluster.ChunkKey(id, ci), replicas) {
				if p == peer {
					out = append(out, ci)
				}
			}
		}
		return out
	}
	for ci := 0; ci < info.NumChunks; ci++ {
		owners := ring.Owners(cluster.ChunkKey(id, ci), replicas)
		if len(owners) != replicas {
			return fmt.Errorf("chunk %d has %d owners, want %d", ci, len(owners), replicas)
		}
	}

	// ---- Act 1: SIGKILL a primary owner mid-read; reads must not degrade.
	victim := -1
	for i := 1; i < len(nodes) && victim < 0; i++ { // never the coordinator
		for ci := 0; ci < info.NumChunks; ci++ {
			if ring.Owners(cluster.ChunkKey(id, ci), replicas)[0] == nodes[i].id {
				victim = i
				break
			}
		}
	}
	if victim < 0 {
		return fmt.Errorf("placement put every primary on the coordinator")
	}
	regionURL := fmt.Sprintf("%s/v1/volumes/%s/region?region=0,0,0,%d,%d,%d",
		nodes[0].url, id, info.Dims[0], info.Dims[1], info.Dims[2])

	t0 := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, 5)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			errs <- checkRead(regionURL, wantRaw, fmt.Sprintf("in-flight read %d", g))
		}(g)
	}
	time.Sleep(10 * time.Millisecond)
	fmt.Printf("chaos-smoke: SIGKILL %s (primary for some chunks) with 4 reads in flight\n",
		nodes[victim].id)
	if err := nodes[victim].cmd.Process.Kill(); err != nil {
		return fmt.Errorf("kill %s: %w", nodes[victim].id, err)
	}
	<-nodes[victim].done
	wg.Wait()
	errs <- checkRead(regionURL, wantRaw, "post-kill read")
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}

	metrics, err := scrape(nodes[0].url)
	if err != nil {
		return err
	}
	if v := metricValue(metrics, "sperrd_replica_failover_chunks_total"); v < 1 {
		return fmt.Errorf("sperrd_replica_failover_chunks_total is %g, want >= 1", v)
	}
	if v := metricValue(metrics, "sperrd_cluster_degraded_total"); v != 0 {
		return fmt.Errorf("sperrd_cluster_degraded_total is %g after failover, want 0", v)
	}
	fmt.Printf("chaos-smoke: failover ok in %v (reads 200, trailer ok, bit-identical, %g chunks rerouted)\n",
		time.Since(t0).Round(time.Millisecond),
		metricValue(metrics, "sperrd_replica_failover_chunks_total"))

	// ---- Act 2: the victim rejoins as a replacement peer with an empty
	// store; its scrubber must converge to full ring ownership.
	t0 = time.Now()
	rejoined, err := startNode(bin, filepath.Join(tmp, "store-"+nodes[victim].id+"-rejoin"),
		nodes[victim].id, nodes[victim].addr, peersFlag)
	if err != nil {
		return fmt.Errorf("restart %s: %w", nodes[victim].id, err)
	}
	nodes[victim] = rejoined
	defer rejoined.cmd.Process.Kill()
	if err := waitHealthy(rejoined); err != nil {
		return err
	}
	wantOwned := desired(rejoined.id)
	if err := waitOwned(rejoined, id, wantOwned); err != nil {
		return fmt.Errorf("rejoin did not converge: %w", err)
	}
	fmt.Printf("chaos-smoke: replacement peer %s converged to %d owned chunks in %v\n",
		rejoined.id, len(wantOwned), time.Since(t0).Round(time.Millisecond))

	// ---- Act 3: corrupt a shard blob on a live peer's disk; its
	// scrubber must detect and heal it with no client read in between.
	target := nodes[1]
	if victim == 1 {
		target = nodes[2]
	}
	before, err := scrape(target.url)
	if err != nil {
		return err
	}
	d0 := metricValue(before, "sperrd_scrub_damaged_chunks_total")
	r0 := metricValue(before, "sperrd_scrub_repaired_chunks_total")
	if metricValue(before, "sperrd_scrub_runs_total") < 1 {
		return fmt.Errorf("%s scrubber has not run (sperrd_scrub_runs_total 0)", target.id)
	}

	blobPath := filepath.Join(target.storeDir, "volumes", id+".sperr")
	lost, err := corruptOwnedFrame(blobPath)
	if err != nil {
		return fmt.Errorf("corrupt %s shard: %w", target.id, err)
	}
	fmt.Printf("chaos-smoke: flipped bytes in %s's shard blob (chunks %v now fail CRC)\n",
		target.id, lost)

	t0 = time.Now()
	deadline := time.Now().Add(scrubDeadline)
	for {
		m, err := scrape(target.url)
		if err != nil {
			return err
		}
		if metricValue(m, "sperrd_scrub_damaged_chunks_total") > d0 &&
			metricValue(m, "sperrd_scrub_repaired_chunks_total") >= r0+float64(len(lost)) {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("scrubber did not heal within %v (damaged %g->%g, repaired %g->%g)",
				scrubDeadline, d0, metricValue(m, "sperrd_scrub_damaged_chunks_total"),
				r0, metricValue(m, "sperrd_scrub_repaired_chunks_total"))
		}
		time.Sleep(25 * time.Millisecond)
	}
	conv := time.Since(t0).Round(time.Millisecond)
	if err := waitOwned(target, id, desired(target.id)); err != nil {
		return fmt.Errorf("healed shard still missing chunks: %w", err)
	}
	fmt.Printf("chaos-smoke: scrub convergence time %v (%d chunks re-fetched from replicas, no client read involved)\n",
		conv, len(lost))

	// After healing, every coordinator must serve the full volume
	// non-degraded and bit-identical.
	for _, n := range nodes {
		url := fmt.Sprintf("%s/v1/volumes/%s/region?region=0,0,0,%d,%d,%d",
			n.url, id, info.Dims[0], info.Dims[1], info.Dims[2])
		if err := checkRead(url, wantRaw, "post-heal read via "+n.id); err != nil {
			return err
		}
	}
	fmt.Println("chaos-smoke: post-heal reads bit-identical through all coordinators")

	// Everyone drains cleanly.
	for _, n := range nodes {
		if err := n.cmd.Process.Signal(syscall.SIGTERM); err != nil {
			return fmt.Errorf("signal %s: %w", n.id, err)
		}
		select {
		case err := <-n.done:
			if err != nil {
				return fmt.Errorf("%s exited non-zero after SIGTERM: %v", n.id, err)
			}
		case <-time.After(15 * time.Second):
			return fmt.Errorf("%s did not exit within 15s of SIGTERM", n.id)
		}
	}
	fmt.Println("chaos-smoke: graceful shutdown ok")
	return nil
}

// checkRead fetches a region and requires 200 + "ok" trailer + bytes
// identical to the reference decode.
func checkRead(url string, wantRaw []byte, what string) error {
	res, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	if res.StatusCode != 200 {
		return fmt.Errorf("%s: status %d: %s", what, res.StatusCode, body)
	}
	tr := res.Trailer.Get("X-Sperr-Status")
	if tr == "" {
		tr = res.Header.Get("X-Sperr-Status")
	}
	if tr != "ok" {
		return fmt.Errorf("%s: trailer %q, want ok (read must not degrade)", what, tr)
	}
	if !bytes.Equal(body, wantRaw) {
		return fmt.Errorf("%s: bytes differ from single-node decode", what)
	}
	return nil
}

// waitOwned polls a node's shard blob on disk until it holds (at least)
// every chunk the ring assigns that node.
func waitOwned(n *node, id string, want []int) error {
	blobPath := filepath.Join(n.storeDir, "volumes", id+".sperr")
	deadline := time.Now().Add(scrubDeadline)
	for {
		blob, err := os.ReadFile(blobPath)
		if err == nil {
			owned, oerr := sperr.OwnedChunks(blob)
			if oerr == nil && containsAll(owned, want) {
				return nil
			}
		}
		if time.Now().After(deadline) {
			blob, _ := os.ReadFile(blobPath)
			owned, _ := sperr.OwnedChunks(blob)
			return fmt.Errorf("%s owns %v after %v, want ⊇ %v", n.id, owned, scrubDeadline, want)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// corruptOwnedFrame flips two bytes inside the blob so that at least one
// previously-intact chunk frame fails its CRC, and returns the chunks
// lost. The write is tmp+rename so the daemon never sees a torn file.
func corruptOwnedFrame(path string) ([]int, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	before, err := sperr.OwnedChunks(blob)
	if err != nil {
		return nil, err
	}
	if len(before) == 0 {
		return nil, fmt.Errorf("shard owns no chunks to corrupt")
	}
	for off := 40; off+2 < len(blob)-8; off += 64 {
		mod := append([]byte(nil), blob...)
		mod[off] ^= 0xff
		mod[off+1] ^= 0xff
		after, err := sperr.OwnedChunks(mod)
		if err != nil || len(after) < len(before) {
			lost := diffSorted(before, after)
			tmp := path + ".chaos"
			if err := os.WriteFile(tmp, mod, 0o644); err != nil {
				return nil, err
			}
			return lost, os.Rename(tmp, path)
		}
	}
	return nil, fmt.Errorf("no byte flip unseated a chunk frame")
}

func diffSorted(before, after []int) []int {
	in := make(map[int]bool, len(after))
	for _, ci := range after {
		in[ci] = true
	}
	var out []int
	for _, ci := range before {
		if !in[ci] {
			out = append(out, ci)
		}
	}
	sort.Ints(out)
	return out
}

func containsAll(have, want []int) bool {
	in := make(map[int]bool, len(have))
	for _, ci := range have {
		in[ci] = true
	}
	for _, ci := range want {
		if !in[ci] {
			return false
		}
	}
	return true
}

func reservePorts(n int) ([]string, error) {
	addrs := make([]string, n)
	lns := make([]net.Listener, n)
	for i := range addrs {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	for _, ln := range lns {
		ln.Close()
	}
	return addrs, nil
}

func startNode(bin, storeDir, id, addr, peers string) (*node, error) {
	cmd := exec.Command(bin,
		"-addr", addr,
		"-store-dir", storeDir,
		"-node-id", id,
		"-peers", peers,
		"-peer-timeout", "2s",
		"-hedge-after", "100ms",
		"-peer-retries", "1",
		"-replicas", fmt.Sprint(replicas),
		"-scrub-interval", scrubEvery.String(),
		"-budget-mb", "64",
		"-quiet")
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %s: %w", id, err)
	}
	n := &node{id: id, url: "http://" + addr, addr: addr, storeDir: storeDir,
		cmd: cmd, done: make(chan error, 1)}
	go func() { n.done <- cmd.Wait() }()
	return n, nil
}

func waitHealthy(n *node) error {
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-n.done:
			return fmt.Errorf("%s exited before healthy: %v", n.id, err)
		default:
		}
		res, err := http.Get(n.url + "/healthz")
		if err == nil {
			res.Body.Close()
			if res.StatusCode == 200 {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s never became healthy", n.id)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func ingest(base string, container []byte) (string, error) {
	req, err := http.NewRequest("PUT", base+"/v1/volumes", bytes.NewReader(container))
	if err != nil {
		return "", err
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	out, _ := io.ReadAll(res.Body)
	if res.StatusCode != 201 && res.StatusCode != 200 {
		return "", fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	id := res.Header.Get("X-Sperr-Volume-Id")
	if id == "" {
		return "", fmt.Errorf("missing X-Sperr-Volume-Id header")
	}
	return id, nil
}

func scrape(base string) (string, error) {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	text, err := io.ReadAll(res.Body)
	return string(text), err
}

// metricValue extracts one series' value from scraped metrics text
// (zero when absent).
func metricValue(metrics, name string) float64 {
	for _, line := range strings.Split(metrics, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			fmt.Sscanf(fields[1], "%g", &v)
			return v
		}
	}
	return 0
}
