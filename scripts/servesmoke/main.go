// Command servesmoke is the `make serve-smoke` harness: it builds the
// sperrd binary, starts it on a kernel-assigned localhost port, round
// trips a small volume over HTTP (compress -> decompress, PWE bound
// verified), ingests the container into the content-addressed store and
// reads a region through the decoded cache twice (second read must be a
// hit with the chunk-decode counter flat), checks /metrics and /healthz,
// then sends SIGTERM and requires a clean graceful-shutdown exit. Exit
// status 0 means the daemon serves, caches, measures, and drains.
package main

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"time"
)

const (
	dimX, dimY, dimZ = 48, 33, 17
	tol              = 1e-4
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "serve-smoke: FAIL: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("serve-smoke: OK")
}

func run() error {
	tmp, err := os.MkdirTemp("", "sperrd-smoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)
	bin := filepath.Join(tmp, "sperrd")

	fmt.Println("serve-smoke: building sperrd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sperrd")
	build.Stdout, build.Stderr = os.Stdout, os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("build sperrd: %w", err)
	}

	addrFile := filepath.Join(tmp, "addr")
	daemon := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-budget-mb", "64",
		"-chunk", "16,16,16",
		"-store-dir", filepath.Join(tmp, "store"),
		"-cache-mb", "8",
		"-quiet")
	daemon.Stderr = os.Stderr
	if err := daemon.Start(); err != nil {
		return fmt.Errorf("start sperrd: %w", err)
	}
	exited := make(chan error, 1)
	go func() { exited <- daemon.Wait() }()
	defer daemon.Process.Kill()

	addr, err := waitAddr(addrFile, exited)
	if err != nil {
		return err
	}
	base := "http://" + addr
	fmt.Println("serve-smoke: daemon up at", base)

	if err := get(base+"/healthz", "ok"); err != nil {
		return fmt.Errorf("healthz: %w", err)
	}

	// Round trip a synthetic volume.
	data := makeField()
	raw := make([]byte, len(data)*8)
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	curl := fmt.Sprintf("%s/v1/compress?dims=%d,%d,%d&tol=%g", base, dimX, dimY, dimZ, tol)
	stream, err := post(curl, raw)
	if err != nil {
		return fmt.Errorf("compress: %w", err)
	}
	if len(stream) == 0 || len(stream) >= len(raw) {
		return fmt.Errorf("compress returned %d bytes for %d input bytes", len(stream), len(raw))
	}
	fmt.Printf("serve-smoke: compressed %d -> %d bytes (%.1fx)\n",
		len(raw), len(stream), float64(len(raw))/float64(len(stream)))

	recon, err := post(base+"/v1/decompress", stream)
	if err != nil {
		return fmt.Errorf("decompress: %w", err)
	}
	if len(recon) != len(raw) {
		return fmt.Errorf("decompress returned %d bytes, want %d", len(recon), len(raw))
	}
	worst := 0.0
	for i := range data {
		got := math.Float64frombits(binary.LittleEndian.Uint64(recon[i*8:]))
		if d := math.Abs(got - data[i]); d > worst {
			worst = d
		}
	}
	if worst > tol*(1+1e-9) {
		return fmt.Errorf("PWE bound violated over HTTP: max err %g > tol %g", worst, tol)
	}
	fmt.Printf("serve-smoke: round trip ok, max point-wise error %.3g (tol %g)\n", worst, tol)

	// Describe must answer JSON mentioning the geometry.
	desc, err := post(fmt.Sprintf("%s/v1/describe", base), stream)
	if err != nil {
		return fmt.Errorf("describe: %w", err)
	}
	if !bytes.Contains(desc, []byte(`"Mode": "pwe"`)) {
		return fmt.Errorf("describe response missing mode: %s", desc)
	}

	// Content-addressed serving: ingest the container, then read the same
	// region twice. The first read decodes and warms the cache; the repeat
	// must be a full hit that moves no decode work.
	id, err := ingest(base, stream)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	fmt.Println("serve-smoke: ingested volume", id[:12])
	regionURL := fmt.Sprintf("%s/v1/volumes/%s/region?region=4,3,2,24,16,8", base, id)
	cut1, outcome1, err := getRegion(regionURL)
	if err != nil {
		return fmt.Errorf("cold region: %w", err)
	}
	decodesAfterCold, err := metricValue(base, "sperrd_store_chunk_decodes_total")
	if err != nil {
		return err
	}
	cut2, outcome2, err := getRegion(regionURL)
	if err != nil {
		return fmt.Errorf("warm region: %w", err)
	}
	decodesAfterWarm, err := metricValue(base, "sperrd_store_chunk_decodes_total")
	if err != nil {
		return err
	}
	if outcome2 != "hit" {
		return fmt.Errorf("repeat region read was %q, want hit (first was %q)", outcome2, outcome1)
	}
	if decodesAfterWarm != decodesAfterCold {
		return fmt.Errorf("chunk decode counter moved %g -> %g across a cache hit",
			decodesAfterCold, decodesAfterWarm)
	}
	if !bytes.Equal(cut1, cut2) {
		return fmt.Errorf("cached region bytes differ from the decoded read")
	}
	if decodesAfterCold == 0 {
		return fmt.Errorf("cold region read decoded nothing")
	}
	hits, err := metricValue(base, "sperrd_cache_hits_total")
	if err != nil {
		return err
	}
	if hits == 0 {
		return fmt.Errorf("sperrd_cache_hits_total stayed zero after a hit")
	}
	fmt.Printf("serve-smoke: cached region ok (%s then %s, %g decodes, %g slab hits)\n",
		outcome1, outcome2, decodesAfterCold, hits)

	// Metrics must be non-empty and carry the request counters.
	res, err := http.Get(base + "/metrics")
	if err != nil {
		return fmt.Errorf("metrics: %w", err)
	}
	mt, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if !strings.Contains(string(mt), "sperrd_requests_total") ||
		!strings.Contains(string(mt), "sperrd_admission_inuse_samples") ||
		!strings.Contains(string(mt), "sperrd_cache_resident_samples") {
		return fmt.Errorf("/metrics missing expected series:\n%s", mt)
	}
	fmt.Printf("serve-smoke: /metrics ok (%d bytes)\n", len(mt))

	// Graceful shutdown: SIGTERM must drain and exit zero.
	if err := daemon.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %w", err)
	}
	select {
	case err := <-exited:
		if err != nil {
			return fmt.Errorf("daemon exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(15 * time.Second):
		return fmt.Errorf("daemon did not exit within 15s of SIGTERM")
	}
	fmt.Println("serve-smoke: graceful shutdown ok")
	return nil
}

func makeField() []float64 {
	data := make([]float64, dimX*dimY*dimZ)
	for z := 0; z < dimZ; z++ {
		for y := 0; y < dimY; y++ {
			for x := 0; x < dimX; x++ {
				data[(z*dimY+y)*dimX+x] = math.Sin(0.17*float64(x)) *
					math.Cos(0.13*float64(y)) * (1 + 0.2*math.Sin(0.11*float64(z)))
			}
		}
	}
	return data
}

func waitAddr(path string, exited <-chan error) (string, error) {
	deadline := time.Now().Add(10 * time.Second)
	for {
		select {
		case err := <-exited:
			return "", fmt.Errorf("daemon exited before listening: %v", err)
		default:
		}
		if b, err := os.ReadFile(path); err == nil && len(b) > 0 {
			return strings.TrimSpace(string(b)), nil
		}
		if time.Now().After(deadline) {
			return "", fmt.Errorf("daemon never wrote its address file")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func get(url, want string) error {
	res, err := http.Get(url)
	if err != nil {
		return err
	}
	defer res.Body.Close()
	out, _ := io.ReadAll(res.Body)
	if res.StatusCode != 200 {
		return fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	if want != "" && !strings.Contains(string(out), want) {
		return fmt.Errorf("body %q missing %q", out, want)
	}
	return nil
}

// ingest PUTs a container into the volume store and returns its content
// address.
func ingest(base string, container []byte) (string, error) {
	req, err := http.NewRequest("PUT", base+"/v1/volumes", bytes.NewReader(container))
	if err != nil {
		return "", err
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer res.Body.Close()
	out, _ := io.ReadAll(res.Body)
	if res.StatusCode != 201 && res.StatusCode != 200 {
		return "", fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	id := res.Header.Get("X-Sperr-Volume-Id")
	if id == "" {
		return "", fmt.Errorf("missing X-Sperr-Volume-Id header")
	}
	return id, nil
}

// getRegion fetches a cached-region URL, returning the body and the
// X-Sperr-Cache outcome.
func getRegion(url string) ([]byte, string, error) {
	res, err := http.Get(url)
	if err != nil {
		return nil, "", err
	}
	defer res.Body.Close()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, "", err
	}
	if res.StatusCode != 200 {
		return nil, "", fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	return out, res.Header.Get("X-Sperr-Cache"), nil
}

// metricValue scrapes one un-labelled series from /metrics.
func metricValue(base, name string) (float64, error) {
	res, err := http.Get(base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer res.Body.Close()
	text, _ := io.ReadAll(res.Body)
	for _, line := range strings.Split(string(text), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			var v float64
			if _, err := fmt.Sscanf(fields[1], "%g", &v); err != nil {
				return 0, fmt.Errorf("metric %s: bad value %q", name, fields[1])
			}
			return v, nil
		}
	}
	return 0, fmt.Errorf("metric %s not found in /metrics", name)
}

func post(url string, body []byte) ([]byte, error) {
	res, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer res.Body.Close()
	out, err := io.ReadAll(res.Body)
	if err != nil {
		return nil, err
	}
	if res.StatusCode != 200 {
		return nil, fmt.Errorf("status %d: %s", res.StatusCode, out)
	}
	if ts := res.Trailer.Get("X-Sperr-Status"); ts != "" && ts != "ok" {
		return nil, fmt.Errorf("stream trailer: %s", ts)
	}
	return out, nil
}
