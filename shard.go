package sperr

import "sperr/internal/chunk"

// StubFrameMaxLen is the largest payload a cluster shard's stub frame
// may carry (the v3 codec tag byte). A non-recoverable chunk whose
// indexed payload is longer than this is damage, not deliberate
// slicing — the shard store uses the bound to tell the two apart.
const StubFrameMaxLen = chunk.StubFrameMaxLen

// SliceShard rebuilds a v2/v3 container keeping only the frames of the
// chunks for which keep returns true; every other frame shrinks to a
// checksummed stub and the index footer is regenerated around the new
// offsets. The shard is a valid container describing the full volume's
// geometry, its kept chunks decode bit-identically to the original, and
// keeping every chunk reproduces the input byte for byte. This is the
// unit of placement for a sperrd cluster: each peer receives the shard
// holding exactly the frames it owns. v1 containers have no index
// footer to slice and are rejected.
func SliceShard(stream []byte, keep func(int) bool) ([]byte, error) {
	return chunk.SliceShard(stream, keep)
}
