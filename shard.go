package sperr

import "sperr/internal/chunk"

// StubFrameMaxLen is the largest payload a cluster shard's stub frame
// may carry (the v3 codec tag byte). A non-recoverable chunk whose
// indexed payload is longer than this is damage, not deliberate
// slicing — the shard store uses the bound to tell the two apart.
const StubFrameMaxLen = chunk.StubFrameMaxLen

// SliceShard rebuilds a v2/v3 container keeping only the frames of the
// chunks for which keep returns true; every other frame shrinks to a
// checksummed stub and the index footer is regenerated around the new
// offsets. The shard is a valid container describing the full volume's
// geometry, its kept chunks decode bit-identically to the original, and
// keeping every chunk reproduces the input byte for byte. This is the
// unit of placement for a sperrd cluster: each peer receives the shard
// holding exactly the frames it owns. v1 containers have no index
// footer to slice and are rejected.
func SliceShard(stream []byte, keep func(int) bool) ([]byte, error) {
	return chunk.SliceShard(stream, keep)
}

// MergeShards combines two shards of the same volume into one container
// holding, per chunk, the first intact frame found in (a, b) order;
// chunks intact in neither stay stubs. Frames are copied byte-verbatim,
// so merged chunks decode bit-identically to the original container. A
// damaged frame in either input loses to an intact copy from the other
// — the primitive behind replicated re-ingest convergence and the
// anti-entropy scrubber's self-healing graft. Shards of different
// volumes (or the same volume under different contracts) refuse to
// merge with ErrCorrupt.
func MergeShards(a, b []byte) ([]byte, error) {
	return chunk.MergeShards(a, b)
}

// OwnedChunks returns the sorted indices of the chunks whose frames in a
// v2/v3 container are real and checksum-intact — a shard's owned set as
// evidenced by its bytes, independent of any manifest. Stubs and damaged
// frames are both excluded.
func OwnedChunks(shard []byte) ([]int, error) {
	return chunk.OwnedChunks(shard)
}
