package sperr

// Golden-stream format regression test. A small compressed fixture is
// checked into testdata/; the test asserts that today's encoder reproduces
// it bit-exactly and that today's decoder reconstructs it within the
// recorded tolerance. Any change to the on-disk format — container layout,
// chunk header, SPECK or outlier bitstream, lossless wrapping — fails this
// test, so refactors (e.g. scratch-buffer pooling) cannot silently change
// the format. Regenerate deliberately with:
//
//	go test -run TestGoldenStream -update-golden

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden stream fixture")

// goldenInput is the deterministic volume the fixture encodes: an odd,
// non-chunk-aligned extent so remainder chunks are part of the pinned
// format.
func goldenInput() ([]float64, [3]int) {
	return demoField(24, 17, 9, 7), [3]int{24, 17, 9}
}

const goldenTol = 1e-3

var goldenOpts = &Options{ChunkDims: [3]int{16, 16, 16}, Workers: 2}

func TestGoldenStream(t *testing.T) {
	data, dims := goldenInput()
	stream, _, err := CompressPWE(data, dims, goldenTol, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_pwe_24x17x9.sperr")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stream, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(stream))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatalf("encoder output diverged from golden fixture: %d vs %d bytes; "+
			"the on-disk format changed", len(stream), len(want))
	}

	// The checked-in fixture must still decode bit-for-bit to a valid
	// reconstruction honoring the recorded tolerance.
	rec, rdims, err := Decompress(want)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if rdims != dims {
		t.Fatalf("golden dims %v, want %v", rdims, dims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > goldenTol*(1+1e-9) {
			t.Fatalf("golden PWE violated at %d: %g vs %g", i, rec[i], data[i])
		}
	}

	// Describe must keep reporting the pinned geometry and mode.
	info, err := Describe(want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dims != dims || info.Mode != "pwe" || info.Tolerance != goldenTol {
		t.Fatalf("golden Describe drifted: %+v", info)
	}
	if info.NumChunks != 4 { // 2x2x1 tiling of 24x17x9 by 16^3
		t.Fatalf("golden chunk count %d, want 4", info.NumChunks)
	}
}
