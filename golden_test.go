package sperr

// Golden-stream format regression test. A small compressed fixture is
// checked into testdata/; the test asserts that today's encoder reproduces
// it bit-exactly and that today's decoder reconstructs it within the
// recorded tolerance. Any change to the on-disk format — container layout,
// chunk header, SPECK or outlier bitstream, lossless wrapping — fails this
// test, so refactors (e.g. scratch-buffer pooling) cannot silently change
// the format. Regenerate deliberately with:
//
//	go test -run TestGoldenStream -update-golden

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the golden stream fixture")

// goldenInput is the deterministic volume the fixture encodes: an odd,
// non-chunk-aligned extent so remainder chunks are part of the pinned
// format.
func goldenInput() ([]float64, [3]int) {
	return demoField(24, 17, 9, 7), [3]int{24, 17, 9}
}

const goldenTol = 1e-3

var goldenOpts = &Options{ChunkDims: [3]int{16, 16, 16}, Workers: 2}

func TestGoldenStream(t *testing.T) {
	data, dims := goldenInput()
	stream, _, err := CompressPWE(data, dims, goldenTol, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_pwe_24x17x9_v2.sperr")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, stream, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(stream))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden fixture (run with -update-golden): %v", err)
	}
	if !bytes.Equal(stream, want) {
		t.Fatalf("encoder output diverged from golden fixture: %d vs %d bytes; "+
			"the on-disk format changed", len(stream), len(want))
	}

	// The checked-in fixture must still decode bit-for-bit to a valid
	// reconstruction honoring the recorded tolerance.
	rec, rdims, err := Decompress(want)
	if err != nil {
		t.Fatalf("golden fixture no longer decodes: %v", err)
	}
	if rdims != dims {
		t.Fatalf("golden dims %v, want %v", rdims, dims)
	}
	for i := range data {
		if math.Abs(rec[i]-data[i]) > goldenTol*(1+1e-9) {
			t.Fatalf("golden PWE violated at %d: %g vs %g", i, rec[i], data[i])
		}
	}

	// Describe must keep reporting the pinned geometry and mode.
	info, err := Describe(want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Dims != dims || info.Mode != "pwe" || info.Tolerance != goldenTol {
		t.Fatalf("golden Describe drifted: %+v", info)
	}
	if info.Version != 2 {
		t.Fatalf("golden container version %d, want 2", info.Version)
	}
	if info.NumChunks != 4 { // 2x2x1 tiling of 24x17x9 by 16^3
		t.Fatalf("golden chunk count %d, want 4", info.NumChunks)
	}
}

// goldenV1ReconSHA256 pins the exact reconstruction of the checked-in v1
// fixture (little-endian float64 bytes of the decode), captured on the
// tree that wrote the fixture. The container-v2 refactor must keep
// decoding v1 streams to these exact samples through the compatibility
// path.
const goldenV1ReconSHA256 = "dc9c7a53fd9714c20e98a1ff32067fbafb24e6ca6f2886bc7e152511884d9408"

func reconDigest(data []float64) string {
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	h := sha256.Sum256(raw)
	return hex.EncodeToString(h[:])
}

// TestGoldenV1Compat: the frozen v1 fixture must keep decoding
// byte-identically — through the one-shot wrapper and through the
// streaming Decoder — and keep describing correctly.
func TestGoldenV1Compat(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden_pwe_24x17x9.sperr"))
	if err != nil {
		t.Fatalf("missing v1 fixture (must never be regenerated): %v", err)
	}
	_, dims := goldenInput()

	rec, rdims, err := Decompress(want)
	if err != nil {
		t.Fatalf("v1 fixture no longer decodes: %v", err)
	}
	if rdims != dims {
		t.Fatalf("v1 dims %v, want %v", rdims, dims)
	}
	if got := reconDigest(rec); got != goldenV1ReconSHA256 {
		t.Fatalf("v1 reconstruction drifted: sha256 %s, want %s", got, goldenV1ReconSHA256)
	}

	dec, err := NewDecoder(bytes.NewReader(want))
	if err != nil {
		t.Fatalf("streaming Decoder rejects v1: %v", err)
	}
	if v := dec.FormatVersion(); v != 1 {
		t.Fatalf("v1 fixture reports version %d", v)
	}
	srec, sdims, err := dec.DecodeAll()
	if err != nil {
		t.Fatalf("streaming decode of v1: %v", err)
	}
	if sdims != dims || reconDigest(srec) != goldenV1ReconSHA256 {
		t.Fatalf("streaming v1 decode differs from pinned reconstruction")
	}

	info, err := Describe(want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 || info.Dims != dims || info.Mode != "pwe" || info.Tolerance != goldenTol {
		t.Fatalf("v1 Describe drifted: %+v", info)
	}
}
