// Command sperrbench regenerates the paper's tables and figures on the
// synthetic SDRBench stand-ins.
//
// Examples:
//
//	sperrbench -exp all            # every experiment, default scale
//	sperrbench -exp fig8 -n 64     # rate-distortion comparison on 64^3 grids
//	sperrbench -exp fig9 -quick    # trimmed sweep for a fast look
//
// Experiment ids: tab1 tab2 fig1 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9
// fig10 fig11 (see DESIGN.md for the per-experiment index).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"sperr/internal/experiments"
	"sperr/internal/grid"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id or comma list (or 'all')")
		n       = flag.Int("n", 48, "base grid edge length")
		seed    = flag.Int64("seed", 2023, "synthetic data seed")
		workers = flag.Int("workers", 0, "parallel workers (default GOMAXPROCS)")
		quick   = flag.Bool("quick", false, "trim sweeps for a fast run")
		plots   = flag.Bool("plot", false, "render figures as ASCII charts after the tables")
	)
	flag.Parse()
	cfg := experiments.Config{
		Dims:    grid.D3(*n, *n, *n),
		Seed:    *seed,
		Workers: *workers,
		Quick:   *quick,
	}
	show := func(r *experiments.Result) {
		r.Print(os.Stdout)
		if *plots {
			r.PrintCharts(os.Stdout)
		}
	}
	if *exp == "all" {
		for _, r := range experiments.All(cfg) {
			show(r)
		}
		return
	}
	for _, id := range strings.Split(*exp, ",") {
		id = strings.TrimSpace(id)
		drv := experiments.ByID(id)
		if drv == nil {
			fmt.Fprintf(os.Stderr, "sperrbench: unknown experiment %q\n", id)
			os.Exit(1)
		}
		show(drv(cfg))
	}
}
