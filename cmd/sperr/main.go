// Command sperr is the command-line front end of the SPERR compressor:
// it compresses raw binary float32/float64 volumes into SPERR streams and
// back, mirroring the tool the paper's runtime comparisons invoke.
//
// Examples:
//
//	sperr -c -in field.f32 -f32 -dims 512,512,512 -tol 1e-6 -out field.sperr
//	sperr -c -in field.f64 -dims 384,384,256 -bpp 4 -out field.sperr
//	sperr -c -in field.f64 -dims 256,256,256 -psnr 100 -out field.sperr
//	sperr -d -in field.sperr -out recon.f64
//	sperr -d -in field.sperr -partial 0.1 -out preview.f64   # 10% prefix
//	sperr -d -in field.sperr -lowres 2 -out coarse.f64       # 2 levels coarser
//	sperr -d -in field.sperr -region 0,0,0,64,64,64 -out cut.f64
//	sperr -c -in field.f64 -dims 256,256,256 -tol 1e-4 -codec adaptive -out field.sperr
//	sperr fsck field.sperr                    # verify every frame, print damage map
//	sperr repair damaged.sperr fixed.sperr    # keep verified frames, rebuild index
//	sperr inspect field.sperr                 # per-chunk codec map, no decode
//	sperr inspect -json field.sperr           # same facts, machine-readable
//
// Exit codes: 0 success, 1 I/O or internal error, 2 bad usage, 3 corrupt
// input (including an fsck that found damage).
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"sperr"
	"sperr/internal/rawio"
)

// The tool's standardized exit codes. Scripts branch on these: a backup
// validator distinguishes "archive damaged" (run repair) from "disk
// trouble" (retry).
const (
	exitOK      = 0
	exitIO      = 1
	exitUsage   = 2
	exitCorrupt = 3
)

func main() {
	if len(os.Args) > 1 {
		switch os.Args[1] {
		case "fsck":
			runFsck(os.Args[2:])
			return
		case "repair":
			runRepair(os.Args[2:])
			return
		case "inspect":
			runInspect(os.Args[2:])
			return
		}
	}
	var (
		compress   = flag.Bool("c", false, "compress")
		decompress = flag.Bool("d", false, "decompress")
		info       = flag.Bool("info", false, "describe a compressed stream")
		in         = flag.String("in", "", "input file (raw floats when compressing)")
		out        = flag.String("out", "", "output file")
		dimsStr    = flag.String("dims", "", "volume extent nx,ny,nz (nz=1 for 2D); required with -c")
		tol        = flag.Float64("tol", 0, "point-wise error tolerance (PWE mode)")
		bpp        = flag.Float64("bpp", 0, "target bits per point (size-bounded mode)")
		rmse       = flag.Float64("rmse", 0, "target root-mean-square error (average-error mode)")
		psnr       = flag.Float64("psnr", 0, "target PSNR in dB over the data range (average-error mode)")
		entropy    = flag.Bool("entropy", false, "arithmetic-coded SPECK (PWE mode only)")
		codecName  = flag.String("codec", "", "coding backend: sperr (default), sz, zfp, tthresh, mgard, or adaptive (per-chunk selection; requires -tol)")
		partial    = flag.Float64("partial", 0, "decompress from this fraction (0,1] of each chunk's embedded bits")
		lowres     = flag.Int("lowres", 0, "decompress at a coarser resolution: drop this many wavelet levels")
		region     = flag.String("region", "", "decompress only x,y,z,nx,ny,nz")
		f32        = flag.Bool("f32", false, "input/output values are float32 (default float64)")
		chunkStr   = flag.String("chunk", "", "chunk extent cx,cy,cz (default 256,256,256)")
		workers    = flag.Int("workers", 0, "parallel chunk workers (default GOMAXPROCS)")
		qfactor    = flag.Float64("q", 0, "quantization step as a multiple of tol (default 1.5)")
		quiet      = flag.Bool("quiet", false, "suppress the stats summary")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile of the compress/decompress run to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile taken after the compress/decompress run to this file")
	)
	flag.Parse()

	// Validate the flag combination up front, before any file is opened or
	// data is streamed, so a bad invocation exits with usage instead of
	// failing mid-pipeline.
	switch {
	case *info:
		if *compress || *decompress {
			usageFatal("-info cannot be combined with -c or -d")
		}
		if *in == "" {
			usageFatal("-in is required")
		}
	case *compress && *decompress:
		usageFatal("-c and -d are mutually exclusive")
	case !*compress && !*decompress:
		usageFatal("exactly one of -c, -d or -info is required")
	case *compress:
		if *dimsStr == "" {
			usageFatal("-c requires -dims nx,ny,nz")
		}
		modes := 0
		for _, v := range []float64{*tol, *bpp, *rmse, *psnr} {
			if v > 0 {
				modes++
			}
		}
		if modes != 1 {
			usageFatal("-c requires exactly one of -tol, -bpp, -rmse, -psnr to be positive")
		}
		if *partial != 0 || *lowres != 0 || *region != "" {
			usageFatal("-partial, -lowres and -region apply only to -d")
		}
		switch *codecName {
		case "", "sperr", "sz", "zfp", "tthresh", "mgard", "adaptive":
		default:
			usageFatal("-codec %s is not a known backend (sperr, sz, zfp, tthresh, mgard, adaptive)", *codecName)
		}
		if *codecName != "" && *codecName != "sperr" && !(*tol > 0) {
			usageFatal("-codec %s requires -tol (PWE mode)", *codecName)
		}
	case *decompress:
		picked := 0
		for _, set := range []bool{*partial != 0, *lowres != 0, *region != ""} {
			if set {
				picked++
			}
		}
		if picked > 1 {
			usageFatal("-partial, -lowres and -region are mutually exclusive")
		}
		if *partial != 0 && !(*partial > 0 && *partial <= 1) {
			usageFatal("-partial must be in (0,1], got %g", *partial)
		}
		if *lowres < 0 {
			usageFatal("-lowres must be non-negative, got %d", *lowres)
		}
		if *tol != 0 || *bpp != 0 || *rmse != 0 || *psnr != 0 || *entropy ||
			*dimsStr != "" || *chunkStr != "" || *qfactor != 0 || *codecName != "" {
			usageFatal("compression flags (-dims, -tol, -bpp, -rmse, -psnr, -entropy, -chunk, -q, -codec) apply only to -c")
		}
	}
	if !*info && (*in == "" || *out == "") {
		usageFatal("-in and -out are required")
	}

	if *info {
		if *cpuprofile != "" || *memprofile != "" {
			usageFatal("-cpuprofile and -memprofile apply only to -c and -d")
		}
		runInfo(*in)
		return
	}
	stopProfiles := startProfiles(*cpuprofile, *memprofile)
	if *compress {
		runCompress(compressSpec{
			in: *in, out: *out, dims: *dimsStr,
			tol: *tol, bpp: *bpp, rmse: *rmse, psnr: *psnr,
			f32: *f32, chunk: *chunkStr, workers: *workers,
			qfactor: *qfactor, entropy: *entropy, quiet: *quiet,
			codec: *codecName,
		})
	} else {
		runDecompress(*in, *out, *f32, *partial, *lowres, *region, *workers, *quiet)
	}
	stopProfiles()
}

// startProfiles begins CPU profiling and/or arranges a heap profile for
// the core compress/decompress run; the returned stop function finalizes
// both. Profiles cover only successful runs — the fatal paths exit
// without flushing, which is fine for their purpose (profiling the
// kernels, not the error handling).
func startProfiles(cpuPath, memPath string) func() {
	var cpuFile *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			fatal("create %s: %v", cpuPath, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("start cpu profile: %v", err)
		}
		cpuFile = f
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fatal("close %s: %v", cpuPath, err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fatal("create %s: %v", memPath, err)
			}
			runtime.GC() // settle live-heap accounting before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("write heap profile: %v", err)
			}
			if err := f.Close(); err != nil {
				fatal("close %s: %v", memPath, err)
			}
		}
	}
}

func runInfo(in string) {
	stream, err := os.ReadFile(in)
	if err != nil {
		fatal("read %s: %v", in, err)
	}
	fi, err := sperr.Describe(stream)
	if err != nil {
		fatalStream("describe", err)
	}
	n := fi.Dims[0] * fi.Dims[1] * fi.Dims[2]
	fmt.Printf("volume      %dx%dx%d (%d points)\n", fi.Dims[0], fi.Dims[1], fi.Dims[2], n)
	fmt.Printf("chunks      %d of up to %dx%dx%d\n", fi.NumChunks,
		fi.ChunkDims[0], fi.ChunkDims[1], fi.ChunkDims[2])
	fmt.Printf("mode        %s", fi.Mode)
	if fi.Mode == "pwe" || fi.Mode == "adaptive" {
		fmt.Printf(" (tolerance %.6g)", fi.Tolerance)
	}
	if fi.Entropy {
		fmt.Printf(", arithmetic-coded")
	}
	fmt.Println()
	if fi.Version >= 3 {
		fmt.Printf("codecs      %s\n", formatCodecCounts(fi.CodecCounts))
	}
	fmt.Printf("size        %d bytes (%.3f bits/point)\n", fi.CompressedBytes,
		float64(fi.CompressedBytes*8)/float64(n))
	fmt.Printf("coders      SPECK %d bits, outliers %d bits (pre-lossless)\n",
		fi.SpeckBits, fi.OutlierBits)
}

type compressSpec struct {
	in, out, dims, chunk string
	codec                string
	tol, bpp, rmse, psnr float64
	qfactor              float64
	workers              int
	f32, entropy, quiet  bool
}

func fatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sperr: "+format+"\n", args...)
	os.Exit(exitIO)
}

// fatalStream reports a failure whose cause may be a corrupt container,
// mapping it to exit 3 (corrupt input) versus 1 (other I/O).
func fatalStream(context string, err error) {
	fmt.Fprintf(os.Stderr, "sperr: %s: %v\n", context, err)
	if errors.Is(err, sperr.ErrCorrupt) {
		os.Exit(exitCorrupt)
	}
	os.Exit(exitIO)
}

// usageFatal reports a bad flag combination and exits non-zero with a
// pointer at the usage text, before any I/O has happened.
func usageFatal(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "sperr: "+format+"\n", args...)
	fmt.Fprintln(os.Stderr, "usage: sperr (-c -dims nx,ny,nz (-tol|-bpp|-rmse|-psnr) | -d [-partial|-lowres|-region] | -info) -in FILE [-out FILE]")
	fmt.Fprintln(os.Stderr, "       sperr fsck FILE | sperr repair IN OUT | sperr inspect [-json] FILE")
	fmt.Fprintln(os.Stderr, "run 'sperr -h' for the full flag list")
	os.Exit(exitUsage)
}

func parseDims(s string) [3]int {
	parts := strings.Split(s, ",")
	if len(parts) != 3 {
		fatal("dims must be nx,ny,nz (got %q)", s)
	}
	var d [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			fatal("bad dimension %q", p)
		}
		d[i] = v
	}
	return d
}

func runCompress(c compressSpec) {
	if c.dims == "" {
		fatal("-dims is required when compressing")
	}
	modes := 0
	for _, v := range []float64{c.tol, c.bpp, c.rmse, c.psnr} {
		if v > 0 {
			modes++
		}
	}
	if modes != 1 {
		fatal("exactly one of -tol, -bpp, -rmse, -psnr must be positive")
	}
	dims := parseDims(c.dims)
	width := 8
	if c.f32 {
		width = 4
	}
	n := dims[0] * dims[1] * dims[2]

	// Stream file -> encoder: the raw input is read in bounded batches and
	// fed to the engine, so peak memory is the in-flight chunk set — never
	// the volume.
	inF, err := os.Open(c.in)
	if err != nil {
		fatal("read %s: %v", c.in, err)
	}
	defer inF.Close()
	if fi, err := inF.Stat(); err == nil && fi.Mode().IsRegular() {
		if want := int64(n) * int64(width); fi.Size() != want {
			fatal("%s holds %d bytes; dims %v need %d", c.in, fi.Size(), dims, want)
		}
	}
	outF, err := os.Create(c.out)
	if err != nil {
		fatal("write %s: %v", c.out, err)
	}
	bw := bufio.NewWriterSize(outF, 1<<20)

	opts := &sperr.Options{Workers: c.workers, QFactor: c.qfactor, Entropy: c.entropy}
	if c.chunk != "" {
		opts.ChunkDims = parseDims(c.chunk)
	}
	if c.codec != "" && c.codec != "adaptive" {
		opts.Codec = c.codec
	}
	var enc *sperr.Encoder
	switch {
	case c.codec == "adaptive":
		enc, err = sperr.NewEncoderAdaptive(bw, dims, c.tol, opts)
	case c.tol > 0:
		enc, err = sperr.NewEncoderPWE(bw, dims, c.tol, opts)
	case c.bpp > 0:
		enc, err = sperr.NewEncoderBPP(bw, dims, c.bpp, opts)
	case c.rmse > 0:
		enc, err = sperr.NewEncoderRMSE(bw, dims, c.rmse, opts)
	default:
		// PSNR targets need the data range, which streaming cannot know up
		// front; scan the file once first, then rewind.
		var rng float64
		rng, err = scanRange(inF, width)
		if err == nil {
			_, err = inF.Seek(0, io.SeekStart)
		}
		if err != nil {
			fatal("scan %s: %v", c.in, err)
		}
		if !(rng > 0) {
			rng = 1
		}
		enc, err = sperr.NewEncoderRMSE(bw, dims, rng/math.Pow(10, c.psnr/20), opts)
	}
	if err != nil {
		fatal("compress: %v", err)
	}
	fr, err := rawio.NewFloatReader(bufio.NewReaderSize(inF, 1<<20), width)
	if err != nil {
		fatal("read %s: %v", c.in, err)
	}
	batch := make([]float64, minInt(n, 1<<20))
	for fed := 0; fed < n; {
		k, rerr := fr.Read(batch[:minInt(len(batch), n-fed)])
		if k > 0 {
			if _, werr := enc.Write(batch[:k]); werr != nil {
				fatal("compress: %v", werr)
			}
			fed += k
		}
		if rerr != nil {
			if fed < n {
				fatal("%s: %v after %d of %d values", c.in, rerr, fed, n)
			}
			break
		}
	}
	if err := enc.Close(); err != nil {
		fatal("compress: %v", err)
	}
	if err := bw.Flush(); err != nil {
		fatal("write %s: %v", c.out, err)
	}
	if err := outF.Close(); err != nil {
		fatal("write %s: %v", c.out, err)
	}
	if !c.quiet {
		stats := enc.Stats()
		ratio := float64(n*width) / float64(stats.CompressedBytes)
		fmt.Printf("compressed %d points -> %d bytes (%.3f BPP, ratio %.1fx, %d chunks, %d outliers, %v)\n",
			stats.NumPoints, stats.CompressedBytes, stats.BPP, ratio,
			stats.NumChunks, stats.NumOutliers, stats.WallTime.Round(1000))
		if c.codec != "" {
			fmt.Printf("codecs %s\n", formatCodecCounts(stats.CodecCounts))
		}
	}
}

// scanRange streams through a raw float file once and returns max-min.
func scanRange(r io.Reader, width int) (float64, error) {
	fr, err := rawio.NewFloatReader(bufio.NewReaderSize(r, 1<<20), width)
	if err != nil {
		return 0, err
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	buf := make([]float64, 1<<16)
	for {
		k, err := fr.Read(buf)
		for _, v := range buf[:k] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if err == io.EOF {
			return hi - lo, nil
		}
		if err != nil {
			return 0, err
		}
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func runDecompress(in, out string, f32 bool, partial float64, lowres int, region string, workers int, quiet bool) {
	width := 8
	if f32 {
		width = 4
	}
	if region == "" && lowres == 0 && partial == 0 {
		// Full decode: stream the container through the Decoder, scattering
		// decoded chunks into the output file as they complete. Peak memory
		// is O(workers x chunk size), never the volume.
		runStreamDecompress(in, out, width, workers, quiet)
		return
	}
	stream, err := os.ReadFile(in)
	if err != nil {
		fatal("read %s: %v", in, err)
	}
	var data []float64
	var dims [3]int
	switch {
	case region != "":
		parts := strings.Split(region, ",")
		if len(parts) != 6 {
			fatal("-region must be x,y,z,nx,ny,nz")
		}
		var vals [6]int
		for i, p := range parts {
			v, err := strconv.Atoi(strings.TrimSpace(p))
			if err != nil {
				fatal("bad region component %q", p)
			}
			vals[i] = v
		}
		dims = [3]int{vals[3], vals[4], vals[5]}
		data, err = sperr.DecompressRegion(stream, [3]int{vals[0], vals[1], vals[2]}, dims)
	case lowres > 0:
		data, dims, err = sperr.DecompressLowRes(stream, lowres)
	default:
		data, dims, err = sperr.DecompressPartial(stream, partial)
	}
	if err != nil {
		fatalStream("decompress", err)
	}
	if err := rawio.WriteFloats(out, data, width); err != nil {
		fatal("write %s: %v", out, err)
	}
	if !quiet {
		fmt.Printf("decompressed %dx%dx%d (%d points) -> %s\n",
			dims[0], dims[1], dims[2], len(data), out)
	}
}

// runStreamDecompress reads container frames sequentially and writes each
// decoded chunk's rows straight to their offsets in the output file.
func runStreamDecompress(in, out string, width, workers int, quiet bool) {
	inF, err := os.Open(in)
	if err != nil {
		fatal("read %s: %v", in, err)
	}
	defer inF.Close()
	dec, err := sperr.NewDecoder(bufio.NewReaderSize(inF, 1<<20))
	if err != nil {
		fatalStream("decompress", err)
	}
	dec.SetWorkers(workers)
	vd := dec.Dims()
	outF, err := os.Create(out)
	if err != nil {
		fatal("write %s: %v", out, err)
	}
	err = dec.ForEachChunk(func(ch sperr.DecodedChunk) error {
		// One scratch per callback: callbacks run concurrently, one per
		// worker, and chunk rows reuse it.
		var buf []byte
		nx := ch.Dims[0]
		for z := 0; z < ch.Dims[2]; z++ {
			for y := 0; y < ch.Dims[1]; y++ {
				row := ch.Data[(z*ch.Dims[1]+y)*nx : (z*ch.Dims[1]+y+1)*nx]
				off := ((int64(ch.Origin[2]+z)*int64(vd[1]) + int64(ch.Origin[1]+y)) * int64(vd[0])) + int64(ch.Origin[0])
				var werr error
				buf, werr = rawio.WriteFloatsAt(outF, row, width, off*int64(width), buf)
				if werr != nil {
					return werr
				}
			}
		}
		return nil
	})
	if err != nil {
		fatalStream("decompress", err)
	}
	if err := outF.Close(); err != nil {
		fatal("write %s: %v", out, err)
	}
	if !quiet {
		fmt.Printf("decompressed %dx%dx%d (%d points) -> %s\n",
			vd[0], vd[1], vd[2], vd[0]*vd[1]*vd[2], out)
	}
}
