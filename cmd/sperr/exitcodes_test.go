package main

// Exit-code contract tests, run against the built binary: 0 success,
// 1 other I/O, 2 usage, 3 corrupt input. Scripts depend on the mapping,
// so it is pinned here alongside the flag-validation table.

import (
	"bytes"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"sperr"
)

// makeContainer compresses a small multi-chunk volume in-process and
// returns the container bytes plus each frame's payload offset/length
// (derived from the frame sizes Describe reports).
func makeContainer(t *testing.T) (stream []byte, payloadOff []int, payloadLen []int) {
	t.Helper()
	data := make([]float64, 12*11*10)
	for i := range data {
		data[i] = math.Sin(0.17 * float64(i))
	}
	stream, _, err := sperr.CompressPWE(data, [3]int{12, 11, 10}, 1e-3,
		&sperr.Options{ChunkDims: [3]int{8, 8, 8}})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := sperr.Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	off := 36
	for _, n := range fi.FrameBytes {
		payloadOff = append(payloadOff, off+4)
		payloadLen = append(payloadLen, n)
		off += 4 + n + 4
	}
	return stream, payloadOff, payloadLen
}

func runBin(t *testing.T, bin string, args ...string) (string, int) {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		return string(out), 0
	}
	ee, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("%v: %v\n%s", args, err, out)
	}
	return string(out), ee.ExitCode()
}

func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildSperr(t)
	dir := t.TempDir()

	stream, payloadOff, _ := makeContainer(t)
	clean := filepath.Join(dir, "clean.sperr")
	if err := os.WriteFile(clean, stream, 0o600); err != nil {
		t.Fatal(err)
	}
	damaged := filepath.Join(dir, "damaged.sperr")
	mut := bytes.Clone(stream)
	mut[payloadOff[1]+3] ^= 0x40 // one flipped bit inside frame 1's payload
	if err := os.WriteFile(damaged, mut, 0o600); err != nil {
		t.Fatal(err)
	}
	garbage := filepath.Join(dir, "garbage.sperr")
	if err := os.WriteFile(garbage, []byte("not a container at all"), 0o600); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want int
		msg  string
	}{
		{"fsck-clean", []string{"fsck", clean}, 0, "clean"},
		{"fsck-damaged", []string{"fsck", damaged}, 3, "LOST: frame checksum mismatch"},
		{"fsck-garbage", []string{"fsck", garbage}, 3, "corrupt container"},
		{"fsck-missing-file", []string{"fsck", filepath.Join(dir, "nope")}, 1, "read"},
		{"fsck-usage", []string{"fsck"}, 2, "exactly one argument"},
		{"repair-usage", []string{"repair", damaged}, 2, "exactly two arguments"},
		{"repair-garbage", []string{"repair", garbage, filepath.Join(dir, "out")}, 3, "corrupt container"},
		{"info-garbage", []string{"-info", "-in", garbage}, 3, "describe"},
		{"decompress-damaged", []string{"-d", "-in", damaged, "-out", filepath.Join(dir, "r.f64")}, 3, "checksum mismatch"},
		{"decompress-missing", []string{"-d", "-in", filepath.Join(dir, "nope"), "-out", filepath.Join(dir, "r.f64")}, 1, "read"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runBin(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit code %d, want %d\n%s", code, tc.want, out)
			}
			if !strings.Contains(out, tc.msg) {
				t.Fatalf("output missing %q:\n%s", tc.msg, out)
			}
		})
	}
}

// TestRepairRoundTrip pins the repair contract: after repairing a
// damaged container, normal decompression succeeds and the surviving
// chunks reconstruct bit-identically to the undamaged original.
func TestRepairRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildSperr(t)
	dir := t.TempDir()

	stream, payloadOff, _ := makeContainer(t)
	orig, dims, err := sperr.Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}

	mut := bytes.Clone(stream)
	mut[payloadOff[2]+5] ^= 0x01
	damaged := filepath.Join(dir, "damaged.sperr")
	if err := os.WriteFile(damaged, mut, 0o600); err != nil {
		t.Fatal(err)
	}
	repaired := filepath.Join(dir, "repaired.sperr")
	out, code := runBin(t, bin, "repair", damaged, repaired)
	if code != 0 {
		t.Fatalf("repair exit %d\n%s", code, out)
	}
	if !strings.Contains(out, "kept 7 of 8 chunks") {
		t.Fatalf("unexpected repair summary:\n%s", out)
	}

	// The repaired container must pass fsck and normal decompression.
	if out, code := runBin(t, bin, "fsck", repaired); code != 0 {
		t.Fatalf("fsck of repaired file exit %d\n%s", code, out)
	}
	fixed, err := os.ReadFile(repaired)
	if err != nil {
		t.Fatal(err)
	}
	recon, rdims, err := sperr.Decompress(fixed)
	if err != nil {
		t.Fatalf("decompress repaired: %v", err)
	}
	if rdims != dims {
		t.Fatalf("dims %v, want %v", rdims, dims)
	}
	// Survivors decode bit-identically; the replaced chunk's region reads
	// zero. Identify the damaged chunk's region via the audit report.
	rep, err := sperr.Audit(mut)
	if err != nil {
		t.Fatal(err)
	}
	damagedIdx := rep.SkippedIndices()
	if len(damagedIdx) != 1 || damagedIdx[0] != 2 {
		t.Fatalf("audit skipped %v, want [2]", damagedIdx)
	}
	c := rep.Chunks[2]
	inDamaged := func(x, y, z int) bool {
		return x >= c.Origin[0] && x < c.Origin[0]+c.Dims.NX &&
			y >= c.Origin[1] && y < c.Origin[1]+c.Dims.NY &&
			z >= c.Origin[2] && z < c.Origin[2]+c.Dims.NZ
	}
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				i := (z*dims[1]+y)*dims[0] + x
				if inDamaged(x, y, z) {
					if recon[i] != 0 {
						t.Fatalf("replaced chunk sample (%d,%d,%d) = %g, want 0", x, y, z, recon[i])
					}
				} else if math.Float64bits(recon[i]) != math.Float64bits(orig[i]) {
					t.Fatalf("survivor sample (%d,%d,%d) differs: %g vs %g", x, y, z, recon[i], orig[i])
				}
			}
		}
	}
}
