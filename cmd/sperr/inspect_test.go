package main

// End-to-end tests of the inspect subcommand and the -codec flag: an
// adaptive compression through the real binary, its codec map printed
// without decoding payloads, and the exit-code contract on bad inputs.

import (
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeRawF64(t *testing.T, path string, data []float64) {
	t.Helper()
	raw := make([]byte, 8*len(data))
	for i, v := range data {
		binary.LittleEndian.PutUint64(raw[i*8:], math.Float64bits(v))
	}
	if err := os.WriteFile(path, raw, 0o600); err != nil {
		t.Fatal(err)
	}
}

func TestInspectAndCodecFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildSperr(t)
	dir := t.TempDir()

	// A heterogeneous volume so adaptive selection mixes codecs: a
	// constant x-slab, a smooth ramp, and an oscillatory region.
	nx, ny, nz := 24, 8, 8
	data := make([]float64, nx*ny*nz)
	i := 0
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				switch {
				case x < 8:
					data[i] = 1.5
				case x < 16:
					data[i] = 0.1*float64(x) + 0.02*float64(y*z)
				default:
					data[i] = 5 * math.Sin(1.7*float64(x)) * math.Cos(2.3*float64(y+z))
				}
				i++
			}
		}
	}
	raw := filepath.Join(dir, "vol.f64")
	writeRawF64(t, raw, data)

	// Adaptive compress through the binary; stats must report the codec
	// histogram.
	packed := filepath.Join(dir, "vol.sperr")
	out, code := runBin(t, bin, "-c", "-in", raw, "-dims", "24,8,8", "-chunk", "8,8,8",
		"-tol", "1e-3", "-codec", "adaptive", "-out", packed)
	if code != 0 {
		t.Fatalf("adaptive compress exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "codecs") {
		t.Fatalf("compress stats missing codec histogram:\n%s", out)
	}

	// inspect: container v3, one line per chunk with a codec name, and the
	// histogram — no decode, so it must also work instantly.
	out, code = runBin(t, bin, "inspect", packed)
	if code != 0 {
		t.Fatalf("inspect exit %d:\n%s", code, out)
	}
	for _, want := range []string{"container v3", "mode adaptive", "chunk 0", "codecs"} {
		if !strings.Contains(out, want) {
			t.Fatalf("inspect output missing %q:\n%s", want, out)
		}
	}
	if n := strings.Count(out, "chunk "); n != 3 {
		t.Fatalf("inspect printed %d chunk lines, want 3:\n%s", n, out)
	}

	// inspect -json: the same facts as a machine-readable document —
	// placement tooling parses this to map chunks onto a ring without
	// decoding anything.
	out, code = runBin(t, bin, "inspect", "-json", packed)
	if code != 0 {
		t.Fatalf("inspect -json exit %d:\n%s", code, out)
	}
	var doc struct {
		Version   int    `json:"version"`
		Dims      [3]int `json:"dims"`
		NumChunks int    `json:"num_chunks"`
		Mode      string `json:"mode"`
		Chunks    []struct {
			Index int    `json:"index"`
			Dims  [3]int `json:"dims"`
			Codec string `json:"codec"`
		} `json:"chunks"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("inspect -json is not valid JSON: %v\n%s", err, out)
	}
	if doc.Version != 3 || doc.Dims != [3]int{24, 8, 8} || doc.NumChunks != 3 ||
		doc.Mode != "adaptive" || len(doc.Chunks) != 3 {
		t.Fatalf("inspect -json wrong facts: %+v", doc)
	}
	for i, c := range doc.Chunks {
		if c.Index != i || c.Dims != [3]int{8, 8, 8} || c.Codec == "" {
			t.Fatalf("inspect -json chunk %d malformed: %+v", i, c)
		}
	}

	// Round-trip through the binary: adaptive streams decompress like any
	// other, honoring the tolerance.
	rec := filepath.Join(dir, "rec.f64")
	if out, code := runBin(t, bin, "-d", "-in", packed, "-out", rec); code != 0 {
		t.Fatalf("decompress exit %d:\n%s", code, out)
	}
	rb, err := os.ReadFile(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(rb) != 8*len(data) {
		t.Fatalf("reconstruction is %d bytes, want %d", len(rb), 8*len(data))
	}
	for i := range data {
		v := math.Float64frombits(binary.LittleEndian.Uint64(rb[i*8:]))
		if math.Abs(v-data[i]) > 1e-3*(1+1e-9) {
			t.Fatalf("PWE violated at %d: %g vs %g", i, v, data[i])
		}
	}

	// A pinned single-codec stream: -codec sz writes v3 with every chunk
	// tagged sz.
	szOut := filepath.Join(dir, "vol_sz.sperr")
	if out, code := runBin(t, bin, "-c", "-in", raw, "-dims", "24,8,8", "-chunk", "8,8,8",
		"-tol", "1e-3", "-codec", "sz", "-out", szOut); code != 0 {
		t.Fatalf("sz compress exit %d:\n%s", code, out)
	}
	out, code = runBin(t, bin, "inspect", szOut)
	if code != 0 || !strings.Contains(out, "sz:3") {
		t.Fatalf("inspect of sz stream (exit %d) missing sz:3:\n%s", code, out)
	}

	// Exit-code contract.
	garbage := filepath.Join(dir, "garbage.sperr")
	if err := os.WriteFile(garbage, []byte("not a container"), 0o600); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want int
		msg  string
	}{
		{"inspect-garbage", []string{"inspect", garbage}, 3, "inspect"},
		{"inspect-missing", []string{"inspect", filepath.Join(dir, "nope")}, 1, "read"},
		{"inspect-usage", []string{"inspect"}, 2, "exactly one argument"},
		{"codec-without-tol", []string{"-c", "-in", raw, "-dims", "24,8,8", "-bpp", "2",
			"-codec", "sz", "-out", filepath.Join(dir, "x")}, 2, "requires -tol"},
		{"adaptive-without-tol", []string{"-c", "-in", raw, "-dims", "24,8,8", "-bpp", "2",
			"-codec", "adaptive", "-out", filepath.Join(dir, "x")}, 2, "requires -tol"},
		{"unknown-codec", []string{"-c", "-in", raw, "-dims", "24,8,8", "-tol", "1e-3",
			"-codec", "lz4", "-out", filepath.Join(dir, "x")}, 2, ""},
		{"codec-on-decompress", []string{"-d", "-in", packed, "-codec", "sz",
			"-out", filepath.Join(dir, "x")}, 2, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, code := runBin(t, bin, tc.args...)
			if code != tc.want {
				t.Fatalf("exit code %d, want %d\n%s", code, tc.want, out)
			}
			if tc.msg != "" && !strings.Contains(out, tc.msg) {
				t.Fatalf("output missing %q:\n%s", tc.msg, out)
			}
		})
	}
}
