package main

// The fsck and repair subcommands: offline integrity tooling over the
// salvage reader. fsck prints a per-frame damage map and exits 3 when the
// container needs attention; repair rewrites a damaged container keeping
// every verified frame byte-for-byte and regenerating the index footer.

import (
	"fmt"
	"os"

	"sperr"
)

func runFsck(args []string) {
	if len(args) != 1 {
		usageFatal("fsck takes exactly one argument: sperr fsck FILE")
	}
	stream, err := os.ReadFile(args[0])
	if err != nil {
		fatal("read %s: %v", args[0], err)
	}
	rep, err := sperr.Audit(stream)
	if err != nil {
		fatalStream("fsck", err)
	}
	printDamageMap(args[0], rep)
	if fsckCorrupt(rep) {
		os.Exit(exitCorrupt)
	}
}

// fsckCorrupt decides the exit status: any lost chunk or unattributable
// byte range is damage, and so is a v2 footer that failed to parse even
// when every frame survived (the container still wants a repair).
func fsckCorrupt(rep *sperr.SalvageReport) bool {
	return rep.Degraded() || len(rep.LostRanges) > 0 ||
		(rep.Version >= 2 && !rep.IndexIntact)
}

func printDamageMap(name string, rep *sperr.SalvageReport) {
	fmt.Printf("%s: container v%d, %d chunks\n", name, rep.Version, rep.NumChunks)
	for i := range rep.Chunks {
		c := &rep.Chunks[i]
		loc := "not located"
		if c.Offset >= 0 {
			loc = fmt.Sprintf("offset %-8d %7d bytes", c.Offset, c.Length)
		}
		status := "ok"
		if !c.Recovered {
			status = "LOST: " + c.Reason
		}
		fmt.Printf("  frame %-4d %-28s %s\n", i, loc, status)
	}
	switch {
	case rep.Version < 2:
		fmt.Println("  index      none (v1 container)")
	case rep.IndexIntact:
		fmt.Println("  index      intact")
	default:
		fmt.Println("  index      DAMAGED (frames located by scan)")
	}
	for _, lr := range rep.LostRanges {
		fmt.Printf("  lost bytes [%d,%d)\n", lr[0], lr[1])
	}
	if rep.Degraded() {
		fmt.Printf("%s: %d of %d chunks recoverable\n", name, rep.Recovered, rep.NumChunks)
	} else if fsckCorrupt(rep) {
		fmt.Printf("%s: all chunks recoverable, container needs repair\n", name)
	} else {
		fmt.Printf("%s: clean\n", name)
	}
}

func runRepair(args []string) {
	if len(args) != 2 {
		usageFatal("repair takes exactly two arguments: sperr repair IN OUT")
	}
	stream, err := os.ReadFile(args[0])
	if err != nil {
		fatal("read %s: %v", args[0], err)
	}
	out, rep, err := sperr.Repair(stream)
	if err != nil {
		fatalStream("repair", err)
	}
	if err := os.WriteFile(args[1], out, 0o644); err != nil {
		fatal("write %s: %v", args[1], err)
	}
	fmt.Printf("%s: kept %d of %d chunks (%d replaced by zero-fill placeholders) -> %s\n",
		args[0], rep.Recovered, rep.NumChunks, rep.Skipped, args[1])
}
