package main

// Flag-combination validation tests: every bad invocation must exit
// non-zero with a usage message before touching any input file. The
// table runs against the real binary so the exit status is observable.

import (
	"encoding/binary"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildSperr(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sperr")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

func TestFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildSperr(t)
	// A file that must never be read: bad flag combos fail before I/O.
	tripwire := filepath.Join(t.TempDir(), "never-read.f64")
	if err := os.WriteFile(tripwire, []byte("not floats"), 0o600); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		args []string
		want string
	}{
		{"c-and-d", []string{"-c", "-d", "-in", tripwire, "-out", "x"},
			"-c and -d are mutually exclusive"},
		{"neither", []string{"-in", tripwire, "-out", "x"},
			"exactly one of -c, -d or -info"},
		{"c-without-dims", []string{"-c", "-tol", "1e-3", "-in", tripwire, "-out", "x"},
			"-c requires -dims"},
		{"c-without-mode", []string{"-c", "-dims", "8,8,8", "-in", tripwire, "-out", "x"},
			"exactly one of -tol, -bpp, -rmse, -psnr"},
		{"c-two-modes", []string{"-c", "-dims", "8,8,8", "-tol", "1e-3", "-bpp", "2", "-in", tripwire, "-out", "x"},
			"exactly one of -tol, -bpp, -rmse, -psnr"},
		{"c-with-region", []string{"-c", "-dims", "8,8,8", "-tol", "1e-3", "-region", "0,0,0,4,4,4", "-in", tripwire, "-out", "x"},
			"apply only to -d"},
		{"d-region-and-partial", []string{"-d", "-region", "0,0,0,4,4,4", "-partial", "0.5", "-in", tripwire, "-out", "x"},
			"mutually exclusive"},
		{"d-partial-and-lowres", []string{"-d", "-partial", "0.5", "-lowres", "1", "-in", tripwire, "-out", "x"},
			"mutually exclusive"},
		{"d-bad-partial", []string{"-d", "-partial", "1.5", "-in", tripwire, "-out", "x"},
			"-partial must be in (0,1]"},
		{"d-with-tol", []string{"-d", "-tol", "1e-3", "-in", tripwire, "-out", "x"},
			"apply only to -c"},
		{"d-with-dims", []string{"-d", "-dims", "8,8,8", "-in", tripwire, "-out", "x"},
			"apply only to -c"},
		{"info-with-c", []string{"-info", "-c", "-in", tripwire},
			"-info cannot be combined"},
		{"missing-out", []string{"-d", "-in", tripwire},
			"-in and -out are required"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out, err := exec.Command(bin, tc.args...).CombinedOutput()
			ee, ok := err.(*exec.ExitError)
			if !ok {
				t.Fatalf("want non-zero exit, got err=%v\n%s", err, out)
			}
			if ee.ExitCode() != 2 {
				t.Fatalf("exit code %d, want 2\n%s", ee.ExitCode(), out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("stderr missing %q:\n%s", tc.want, out)
			}
			if !strings.Contains(string(out), "usage:") {
				t.Fatalf("stderr missing usage line:\n%s", out)
			}
		})
	}
}

// TestFlagValidationAllowsGoodInvocation guards against the validator
// rejecting a legitimate command line: a tiny volume round-trips through
// the real binary.
func TestFlagValidationAllowsGoodInvocation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the binary")
	}
	bin := buildSperr(t)
	dir := t.TempDir()
	raw := filepath.Join(dir, "in.f64")
	comp := filepath.Join(dir, "out.sperr")
	recon := filepath.Join(dir, "recon.f64")
	buf := make([]byte, 8*8*8*8)
	for i := 0; i < 8*8*8; i++ {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(math.Sin(0.3*float64(i))))
	}
	if err := os.WriteFile(raw, buf, 0o600); err != nil {
		t.Fatal(err)
	}
	if out, err := exec.Command(bin, "-c", "-dims", "8,8,8", "-tol", "1e-2",
		"-in", raw, "-out", comp, "-quiet").CombinedOutput(); err != nil {
		t.Fatalf("compress: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, "-d", "-in", comp, "-out", recon,
		"-quiet").CombinedOutput(); err != nil {
		t.Fatalf("decompress: %v\n%s", err, out)
	}
	if fi, err := os.Stat(recon); err != nil || fi.Size() != int64(len(buf)) {
		t.Fatalf("recon size: %v (err %v)", fi, err)
	}
}
