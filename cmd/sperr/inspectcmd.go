package main

// The inspect subcommand: prints a container's per-chunk codec map and
// frame sizes straight from the fixed header and index footer — no frame
// payload is decoded, so the cost is independent of the data volume.
// With -json the same facts are emitted as a machine-readable document
// for placement and rebalance tooling (cluster shard planners consume
// the chunk geometry to compute ring ownership without decoding).

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"sperr"
)

// inspectDoc is the -json schema: stable lowercase keys, one entry per
// chunk in container order. Field names are part of the CLI contract.
type inspectDoc struct {
	File        string         `json:"file"`
	Version     int            `json:"version"`
	Dims        [3]int         `json:"dims"`
	ChunkDims   [3]int         `json:"chunk_dims"`
	NumChunks   int            `json:"num_chunks"`
	Bytes       int            `json:"compressed_bytes"`
	Mode        string         `json:"mode"`
	Tolerance   float64        `json:"tolerance,omitempty"`
	CodecCounts map[string]int `json:"codec_counts"`
	Chunks      []inspectChunk `json:"chunks"`
}

type inspectChunk struct {
	Index  int    `json:"index"`
	Origin [3]int `json:"origin"`
	Dims   [3]int `json:"dims"`
	Bytes  int    `json:"frame_bytes"`
	Codec  string `json:"codec"`
}

func runInspect(args []string) {
	fs := flag.NewFlagSet("inspect", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	asJSON := fs.Bool("json", false, "emit machine-readable JSON instead of the table")
	if err := fs.Parse(args); err != nil {
		os.Exit(exitUsage)
	}
	if fs.NArg() != 1 {
		usageFatal("inspect takes exactly one argument: sperr inspect [-json] FILE")
	}
	file := fs.Arg(0)
	stream, err := os.ReadFile(file)
	if err != nil {
		fatal("read %s: %v", file, err)
	}
	fi, err := sperr.Describe(stream)
	if err != nil {
		fatalStream("inspect", err)
	}
	if *asJSON {
		doc := inspectDoc{
			File:        file,
			Version:     fi.Version,
			Dims:        fi.Dims,
			ChunkDims:   fi.ChunkDims,
			NumChunks:   fi.NumChunks,
			Bytes:       fi.CompressedBytes,
			Mode:        fi.Mode,
			Tolerance:   fi.Tolerance,
			CodecCounts: fi.CodecCounts,
			Chunks:      make([]inspectChunk, 0, len(fi.Chunks)),
		}
		for i, c := range fi.Chunks {
			doc.Chunks = append(doc.Chunks, inspectChunk{
				Index: i, Origin: c.Origin, Dims: c.Dims,
				Bytes: fi.FrameBytes[i], Codec: c.Codec,
			})
		}
		out, err := json.MarshalIndent(&doc, "", "  ")
		if err != nil {
			fatal("encode: %v", err)
		}
		fmt.Printf("%s\n", out)
		return
	}
	fmt.Printf("%s: container v%d, %dx%dx%d in %d chunks, mode %s\n",
		file, fi.Version, fi.Dims[0], fi.Dims[1], fi.Dims[2], fi.NumChunks, fi.Mode)
	for i, c := range fi.Chunks {
		fmt.Printf("  chunk %-4d @(%d,%d,%d) %dx%dx%d  %8d bytes  %s\n",
			i, c.Origin[0], c.Origin[1], c.Origin[2],
			c.Dims[0], c.Dims[1], c.Dims[2], fi.FrameBytes[i], c.Codec)
	}
	fmt.Printf("  codecs     %s\n", formatCodecCounts(fi.CodecCounts))
}

// formatCodecCounts renders a codec histogram deterministically, sorted
// by backend name.
func formatCodecCounts(counts map[string]int) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, name := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s:%d", name, counts[name])
	}
	return out
}
