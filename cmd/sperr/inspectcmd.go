package main

// The inspect subcommand: prints a container's per-chunk codec map and
// frame sizes straight from the fixed header and index footer — no frame
// payload is decoded, so the cost is independent of the data volume.

import (
	"fmt"
	"os"
	"sort"

	"sperr"
)

func runInspect(args []string) {
	if len(args) != 1 {
		usageFatal("inspect takes exactly one argument: sperr inspect FILE")
	}
	stream, err := os.ReadFile(args[0])
	if err != nil {
		fatal("read %s: %v", args[0], err)
	}
	fi, err := sperr.Describe(stream)
	if err != nil {
		fatalStream("inspect", err)
	}
	fmt.Printf("%s: container v%d, %dx%dx%d in %d chunks, mode %s\n",
		args[0], fi.Version, fi.Dims[0], fi.Dims[1], fi.Dims[2], fi.NumChunks, fi.Mode)
	for i, c := range fi.Chunks {
		fmt.Printf("  chunk %-4d @(%d,%d,%d) %dx%dx%d  %8d bytes  %s\n",
			i, c.Origin[0], c.Origin[1], c.Origin[2],
			c.Dims[0], c.Dims[1], c.Dims[2], fi.FrameBytes[i], c.Codec)
	}
	fmt.Printf("  codecs     %s\n", formatCodecCounts(fi.CodecCounts))
}

// formatCodecCounts renders a codec histogram deterministically, sorted
// by backend name.
func formatCodecCounts(counts map[string]int) string {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, name := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s:%d", name, counts[name])
	}
	return out
}
