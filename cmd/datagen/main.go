// Command datagen writes the synthetic SDRBench stand-in fields to raw
// binary files, for use with cmd/sperr or external tools.
//
// Example:
//
//	datagen -field miranda-pressure -n 128 -out pressure.f64
//	datagen -field nyx-density -n 64 -f32 -out density.f32
//
// Fields: miranda-pressure, miranda-viscosity, miranda-velocityx,
// miranda-density, s3d-ch4, s3d-temperature, s3d-velocityx, nyx-density,
// nyx-velocityx, qmcpack, lighthouse (2D).
package main

import (
	"flag"
	"fmt"
	"os"

	"sperr/internal/grid"
	"sperr/internal/rawio"
	"sperr/internal/synth"
)

func main() {
	var (
		field = flag.String("field", "miranda-pressure", "field name")
		n     = flag.Int("n", 64, "grid edge length")
		seed  = flag.Int64("seed", 2023, "generator seed")
		f32   = flag.Bool("f32", false, "write float32 instead of float64")
		out   = flag.String("out", "", "output file (required)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(1)
	}
	d := grid.D3(*n, *n, *n)
	var v *grid.Volume
	switch *field {
	case "miranda-pressure":
		v = synth.MirandaPressure(d, *seed)
	case "miranda-viscosity":
		v = synth.MirandaViscosity(d, *seed)
	case "miranda-velocityx":
		v = synth.MirandaVelocityX(d, *seed)
	case "miranda-density":
		v = synth.MirandaDensity(d, *seed)
	case "s3d-ch4":
		v = synth.S3DCH4(d, *seed)
	case "s3d-temperature":
		v = synth.S3DTemperature(d, *seed)
	case "s3d-velocityx":
		v = synth.S3DVelocityX(d, *seed)
	case "nyx-density":
		v = synth.NyxDarkMatterDensity(d, *seed)
	case "nyx-velocityx":
		v = synth.NyxVelocityX(d, *seed)
	case "qmcpack":
		v = synth.QMCPACKOrbitals(grid.D3(*n, *n, *n/2+1), 4, *seed)
	case "lighthouse":
		v = synth.Lighthouse(grid.D2(*n, *n), *seed)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown field %q\n", *field)
		os.Exit(1)
	}
	width := 8
	if *f32 {
		width = 4
	}
	if err := rawio.WriteFloats(*out, v.Data, width); err != nil {
		fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: %v, %d points, %d bytes\n", *out, v.Dims, v.Dims.Len(), v.Dims.Len()*width)
}
