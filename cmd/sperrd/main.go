// Command sperrd is the SPERR compression service: a stdlib-only HTTP
// daemon that streams volumes through the sperr streaming engine with
// admission control, per-request cancellation, graceful shutdown, and a
// metrics surface.
//
// Endpoints:
//
//	POST /v1/compress    raw floats in -> container v2 out
//	                     (?dims=nx,ny,nz and one of ?tol/?bpp/?rmse;
//	                      optional ?f32, ?chunk, ?workers, ?q, ?entropy)
//	POST /v1/decompress  container in -> raw floats out (?f32, ?workers)
//	POST /v1/describe    container in -> JSON stream info
//	POST /v1/region      container in -> raw floats of the cutout
//	                     (?region=x,y,z,nx,ny,nz, optional ?f32, ?workers)
//
// With -store-dir set, the content-addressed volume store is enabled:
//
//	PUT    /v1/volumes             ingest a container; verified, stored
//	                               once, named by content address
//	                               (X-Sperr-Volume-Id, 201/200 idempotent)
//	GET    /v1/volumes/{id}        manifest entry (geometry, checksum)
//	DELETE /v1/volumes/{id}        drop blob, manifest entry, cached slabs
//	GET    /v1/volumes/{id}/region cutout served through the decoded-slab
//	                               cache (?region=..., ?f32, ?workers;
//	                               X-Sperr-Cache: hit|partial|miss)
//
// With -peers and -node-id set (on top of -store-dir), the daemon joins
// a sharded cluster: a volume PUT against any node splits the container
// at chunk-frame boundaries and ships each peer the frames a consistent
// hash ring assigns it; a region GET scatter-gathers the owning peers
// and merges the pieces bit-identically to a single-node read. Each
// chunk lives on -replicas distinct peers (default 2), so a read
// survives a node loss by failing over to the next replica in ring
// order, and a background anti-entropy scrubber (-scrub-interval)
// re-fetches damaged or missing chunks from surviving replicas. Only
// when every replica is gone does a read degrade (fill value +
// "degraded" status trailer naming the unreachable peers) instead of
// failing. Peers talk over:
//
//	PUT    /v1/internal/chunks/{id}  ingest a shard (peer-to-peer)
//	GET    /v1/internal/chunks/{id}  stream owned chunk∩region frames
//	DELETE /v1/internal/chunks/{id}  drop the local shard
//	POST   /v1/internal/repair/{id}  answer a shard of locally-intact chunks
//	GET    /v1/internal/manifest     list resident volumes (id, chunk count)
//
// Every response carries X-Sperr-Node naming the answering node.
//
//	GET  /metrics        Prometheus text exposition
//	GET  /debug/vars     expvar (includes the sperrd registry)
//	GET  /healthz        liveness (503 while draining)
//
// Example:
//
//	sperrd -addr :8080 -budget-mb 512 &
//	curl -s --data-binary @field.f64 \
//	  'localhost:8080/v1/compress?dims=256,256,256&tol=1e-6' > field.sperr
//	curl -s --data-binary @field.sperr localhost:8080/v1/decompress > recon.f64
//
// SIGINT/SIGTERM trigger a graceful drain: queued requests are refused
// with 503, in-flight requests finish (bounded by -drain-timeout), then
// the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sperr/internal/server"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the bound listen address to this file (for harnesses)")
		budgetMB     = flag.Int64("budget-mb", 512, "in-flight sample budget, in MiB of worker arenas (8 bytes/sample)")
		maxQueue     = flag.Int("max-queue", 64, "admission wait-queue length; beyond it requests get 429")
		queueWait    = flag.Duration("queue-wait", 10*time.Second, "max time a request may wait for admission before 429")
		workers      = flag.Int("workers", 0, "per-request engine worker cap (default GOMAXPROCS)")
		chunkStr     = flag.String("chunk", "", "compress-side chunk extent cx,cy,cz (default 256,256,256)")
		maxContainer = flag.Int64("max-container-mb", 1024, "max buffered container size for describe/region, MiB")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")
		quiet        = flag.Bool("quiet", false, "suppress per-request logs")
		storeDir     = flag.String("store-dir", "", "content-addressed volume store directory (empty disables /v1/volumes)")
		cacheMB      = flag.Int64("cache-mb", 0, "decoded-slab cache residency cap, MiB (8 bytes/sample; 0 = budget/4)")
		nodeID       = flag.String("node-id", "", "this node's name in the cluster roster (required with -peers)")
		peersStr     = flag.String("peers", "", "cluster roster as comma-separated id=url entries, including this node (enables sharded multi-node mode; requires -node-id and -store-dir)")
		peerTimeout  = flag.Duration("peer-timeout", 0, "max duration of one peer RPC attempt (0 = 2s)")
		hedgeAfter   = flag.Duration("hedge-after", 0, "duplicate a slow peer fetch after this long (0 = 250ms, negative disables)")
		peerRetries  = flag.Int("peer-retries", 0, "extra attempts for a failed peer fetch (0 = 1, negative disables)")
		replicas     = flag.Int("replicas", 0, "distinct peers owning each chunk (0 = 2, clamped to roster size); with 2+, reads survive a node loss undegraded")
		scrubEvery   = flag.Duration("scrub-interval", 0, "pause between anti-entropy scrub passes (0 = 30s, negative disables the scrubber)")
	)
	flag.Parse()

	cfg := server.Config{
		BudgetSamples:     *budgetMB << 20 / 8,
		MaxQueue:          *maxQueue,
		QueueWait:         *queueWait,
		Workers:           *workers,
		MaxContainerBytes: *maxContainer << 20,
		StoreDir:          *storeDir,
		CacheSamples:      *cacheMB << 20 / 8,
		NodeID:            *nodeID,
		PeerTimeout:       *peerTimeout,
		HedgeAfter:        *hedgeAfter,
		PeerRetries:       *peerRetries,
		Replicas:          *replicas,
		ScrubInterval:     *scrubEvery,
	}
	if *peersStr != "" {
		for _, p := range strings.Split(*peersStr, ",") {
			if p = strings.TrimSpace(p); p != "" {
				cfg.Peers = append(cfg.Peers, p)
			}
		}
		if len(cfg.Peers) > 0 && (*nodeID == "" || *storeDir == "") {
			fatal("-peers requires -node-id and -store-dir")
		}
	}
	if !*quiet {
		cfg.LogWriter = os.Stderr
	}
	if *chunkStr != "" {
		var c [3]int
		if _, err := fmt.Sscanf(*chunkStr, "%d,%d,%d", &c[0], &c[1], &c[2]); err != nil ||
			c[0] <= 0 || c[1] <= 0 || c[2] <= 0 {
			fatal("bad -chunk %q (want cx,cy,cz)", *chunkStr)
		}
		cfg.ChunkDims = c
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(bound), 0o644); err != nil {
			fatal("write %s: %v", *addrFile, err)
		}
	}
	fmt.Fprintf(os.Stderr, "sperrd: listening on %s (budget %d samples, queue %d, workers cap %d)\n",
		bound, cfg.BudgetSamples, cfg.MaxQueue, cfg.Workers)

	s, err := server.New(cfg)
	if err != nil {
		fatal("init: %v", err)
	}
	if *storeDir != "" {
		fmt.Fprintf(os.Stderr, "sperrd: volume store at %s (%d volumes, cache cap %d samples)\n",
			*storeDir, s.Store().Len(), s.Store().Cache().Cap())
	}
	if len(cfg.Peers) > 0 {
		fmt.Fprintf(os.Stderr, "sperrd: cluster node %s in a %d-peer roster (%d replicas per chunk)\n",
			*nodeID, len(cfg.Peers), s.Cluster().Replicas())
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "sperrd: %v, draining (up to %v)\n", sig, *drainTimeout)
		ctx, cancelCtx := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancelCtx()
		if err := s.Shutdown(ctx); err != nil {
			fatal("shutdown: %v", err)
		}
		if err := <-errc; err != nil {
			fatal("serve: %v", err)
		}
		fmt.Fprintln(os.Stderr, "sperrd: drained, bye")
	case err := <-errc:
		if err != nil {
			fatal("serve: %v", err)
		}
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "sperrd: "+format+"\n", args...)
	os.Exit(1)
}
