# SPERR-Go development targets.

GO ?= go

.PHONY: all build vet test test-race faultinject fuzz bench bench-kernels profile-kernels cover experiments examples serve-smoke cluster-smoke chaos-smoke clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Full test log, as recorded in test_output.txt.
test-log:
	$(GO) test ./... 2>&1 | tee test_output.txt

# Race-hardened tier: the parallel chunk pipeline, scratch pooling, and
# instrumentation delivery all run under the race detector.
test-race:
	$(GO) test -race ./...

# Deterministic corruption campaign over the golden fixtures: every
# frame-boundary truncation plus stratified byte flips and zeroed runs,
# asserting no panic, bounded time and allocation, and exact salvage
# recovery of the checksum-intact chunks. The same campaign also runs
# over stub-shard containers, asserting damaged frames never pass the
# ownership audit and that shard damage on one peer never corrupts a
# full-cluster read while a clean replica exists.
faultinject:
	$(GO) test -race -count=1 -v -run 'TestCampaign' ./internal/faultinject/

# Short fuzz smoke over the decoder-facing targets; raise FUZZTIME for a
# longer exploration.
FUZZTIME ?= 15s
fuzz:
	$(GO) test -fuzz=FuzzDecompress -fuzztime=$(FUZZTIME) -run=^$$ .
	$(GO) test -fuzz=FuzzCompressDecompress -fuzztime=$(FUZZTIME) -run=^$$ .

bench:
	$(GO) test -bench=. -benchmem ./...

# Hot-kernel micro-benchmarks: cache-blocked wavelet passes, integer
# bit-plane SPECK, word-batched bit I/O, the end-to-end single-thread
# and intra-chunk-threaded pipelines, and the streaming engine (which
# also reports peak-inflight-bytes, its bounded-memory witness).
# BENCH_KERNELS.json records the before/after table for these.
bench-kernels:
	$(GO) test -run='TestParallelCoderMatchesSerialGolden' -count=1 .
	$(GO) test -run='^$$' -bench='WaveletForward3D|WaveletInverse3D' -benchmem ./internal/wavelet/
	$(GO) test -run='^$$' -bench='SpeckEncode|SpeckDecode' -benchmem ./internal/speck/
	$(GO) test -run='^$$' -bench='BitsReadWrite' -benchmem ./internal/bits/
	$(GO) test -run='^$$' -bench='CompressPWE64|CompressPWEIntra64|Decompress64' -benchmem .
	$(GO) test -run='^$$' -bench='StreamCompress|StreamDecompress' -benchmem .
	$(GO) test -run='^$$' -bench='RegionCached|RegionUncached' -benchmem ./internal/store/
	$(GO) test -run='^$$' -bench='AdaptiveSelect' -benchmem .
	$(GO) test -run='^$$' -bench='ProfileChunk' -benchmem ./internal/codec/

bench-log:
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

# CPU and heap profiles of the hot coding kernels, written under
# profiles/ for `go tool pprof`. End-to-end runs can be profiled instead
# via `sperr -c/-d -cpuprofile=... -memprofile=...`.
profile-kernels:
	mkdir -p profiles
	$(GO) test -run='^$$' -bench='SpeckEncode$$|SpeckDecode$$' -benchtime=5x \
		-cpuprofile=profiles/speck.cpu.pprof -memprofile=profiles/speck.mem.pprof \
		-o profiles/speck.test ./internal/speck/
	$(GO) test -run='^$$' -bench='WaveletForward3D|WaveletInverse3D' -benchtime=5x \
		-cpuprofile=profiles/wavelet.cpu.pprof -memprofile=profiles/wavelet.mem.pprof \
		-o profiles/wavelet.test ./internal/wavelet/

cover:
	$(GO) test -cover ./...

# Regenerate every table and figure of the paper (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/sperrbench -exp all | tee experiments_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/climate
	$(GO) run ./examples/turbulencedb
	$(GO) run ./examples/compressors
	$(GO) run ./examples/multires
	$(GO) run ./examples/insitu

# End-to-end smoke of the sperrd daemon: builds the binary, starts it on
# a free localhost port, round-trips a volume over HTTP (PWE bound
# checked), verifies /metrics is non-empty, and requires a graceful
# SIGTERM drain with exit status 0.
serve-smoke:
	$(GO) run ./scripts/servesmoke

# End-to-end smoke of a three-node sperrd cluster: ingests both golden
# fixtures, reads cross-shard regions through every coordinator
# (bit-identical to a single-node decode), SIGKILLs one peer and
# requires the next read to degrade (fill + trailer) instead of
# erroring, then drains the survivors.
cluster-smoke:
	$(GO) run ./scripts/clustersmoke

# Chaos smoke of the replicated cluster: boots three peers with
# -replicas=2 and a fast scrubber, SIGKILLs a primary owner with reads
# in flight (reads must stay 200 / non-degraded / bit-identical),
# restarts the victim with an empty store and requires scrubber-driven
# rejoin convergence, then corrupts a shard blob on disk and requires
# the anti-entropy scrubber to heal it within the deadline — witnessed
# by sperrd_replica_* and sperrd_scrub_* counters. Logs each act's
# convergence time.
chaos-smoke:
	$(GO) run ./scripts/chaossmoke

clean:
	$(GO) clean ./...
