package sperr

// Benchmark-tier smoke for the speculative parallel SPECK coder: the
// whole point of the speculative merge is that parallelism is a pure
// runtime knob, so the compressed bytes at any worker count must hash
// identically to the serial coder's — pinned here on both golden
// fixtures. `make bench-kernels` runs this before the timing rows, so a
// determinism break can never hide behind a speedup number.

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func floatHash(v []float64) [32]byte {
	h := sha256.New()
	var b [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(b[:], math.Float64bits(x))
		h.Write(b[:])
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// TestEntropyModeOnGoldenVolume is the SPECK-AC acceptance check on the
// golden input: the AC stream must round-trip inside the PWE bound and
// come out measurably smaller than the raw-bit stream at the same
// tolerance, while the raw-bit encoder keeps producing the pinned fixture
// bytes (TestGoldenStream) — old containers are untouched by the mode.
func TestEntropyModeOnGoldenVolume(t *testing.T) {
	data, dims := goldenInput()
	raw, _, err := CompressPWE(data, dims, goldenTol, goldenOpts)
	if err != nil {
		t.Fatal(err)
	}
	acOpts := *goldenOpts
	acOpts.Entropy = true
	ac, _, err := CompressPWE(data, dims, goldenTol, &acOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(ac) >= len(raw) {
		t.Errorf("SPECK-AC stream not smaller: %d vs %d raw bytes", len(ac), len(raw))
	}
	rec, recDims, err := Decompress(ac)
	if err != nil {
		t.Fatal(err)
	}
	if recDims != [3]int{24, 17, 9} {
		t.Fatalf("dims %v", recDims)
	}
	for i := range data {
		if d := math.Abs(rec[i] - data[i]); d > goldenTol*(1+1e-12) {
			t.Fatalf("point %d: error %g exceeds tolerance %g", i, d, goldenTol)
		}
	}
}

func TestParallelCoderMatchesSerialGolden(t *testing.T) {
	data, dims := goldenInput()
	want, err := os.ReadFile(filepath.Join("testdata", "golden_pwe_24x17x9_v2.sperr"))
	if err != nil {
		t.Fatalf("missing golden fixture: %v", err)
	}
	wantHash := sha256.Sum256(want)
	for _, workers := range []int{1, 2, 3, 8} {
		opts := *goldenOpts
		opts.Workers = workers
		stream, _, err := CompressPWE(data, dims, goldenTol, &opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sha256.Sum256(stream) != wantHash {
			t.Fatalf("workers=%d: compressed stream hash diverged from the serial/golden bytes", workers)
		}
	}
	// Decoder side, on both checked-in fixtures (v1 and v2 containers):
	// the reconstruction hash must not depend on the worker count either.
	for _, name := range []string{"golden_pwe_24x17x9.sperr", "golden_pwe_24x17x9_v2.sperr"} {
		stream, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatalf("missing golden fixture %s: %v", name, err)
		}
		ref, refDims, err := DecompressWorkers(stream, 1)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if refDims != [3]int{24, 17, 9} {
			t.Fatalf("%s: dims %v", name, refDims)
		}
		refHash := floatHash(ref)
		for _, workers := range []int{2, 8} {
			out, _, err := DecompressWorkers(stream, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if floatHash(out) != refHash {
				t.Fatalf("%s workers=%d: reconstruction hash diverged from serial decode", name, workers)
			}
		}
	}
}
