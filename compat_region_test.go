package sperr

// Frozen-fixture coverage for the seekable access paths: Describe and
// DecompressRegion must keep working against the v1 compat fixture
// (testdata/golden_pwe_24x17x9.sperr, never regenerated) — reporting the
// pinned geometry, cutting regions that match the pinned reconstruction
// exactly, and failing cleanly with ErrCorrupt on damage. Also pins
// DecompressFloat32Workers parity: every worker count must produce the
// same float32 volume.

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"
)

func readV1Fixture(t *testing.T) []byte {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("testdata", "golden_pwe_24x17x9.sperr"))
	if err != nil {
		t.Fatalf("missing v1 fixture (must never be regenerated): %v", err)
	}
	return b
}

// TestV1FixtureDescribe: the compat path must report the fixture's full
// geometry, not just mode/tolerance — chunk tiling included.
func TestV1FixtureDescribe(t *testing.T) {
	stream := readV1Fixture(t)
	info, err := Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != 1 {
		t.Fatalf("Version = %d, want 1", info.Version)
	}
	if info.Dims != [3]int{24, 17, 9} {
		t.Fatalf("Dims = %v, want 24x17x9", info.Dims)
	}
	if info.ChunkDims != [3]int{16, 16, 16} {
		t.Fatalf("ChunkDims = %v, want 16^3", info.ChunkDims)
	}
	if info.NumChunks != 4 { // 2x2x1 tiling of 24x17x9
		t.Fatalf("NumChunks = %d, want 4", info.NumChunks)
	}
	if info.Mode != "pwe" || info.Tolerance != goldenTol {
		t.Fatalf("Mode/Tolerance = %q/%g, want pwe/%g", info.Mode, info.Tolerance, goldenTol)
	}
	if info.CompressedBytes != len(stream) {
		t.Fatalf("CompressedBytes = %d, stream is %d", info.CompressedBytes, len(stream))
	}
}

// cutout extracts origin+dims from a full row-major volume.
func cutout(full []float64, vd, origin, dims [3]int) []float64 {
	out := make([]float64, dims[0]*dims[1]*dims[2])
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				src := ((origin[2]+z)*vd[1]+origin[1]+y)*vd[0] + origin[0] + x
				out[(z*dims[1]+y)*dims[0]+x] = full[src]
			}
		}
	}
	return out
}

// TestV1FixtureRegion: regions cut from the v1 fixture must match the
// pinned full reconstruction bit-for-bit, at every worker count,
// including cuts that cross chunk boundaries and hug remainder chunks.
func TestV1FixtureRegion(t *testing.T) {
	stream := readV1Fixture(t)
	full, vd, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := reconDigest(full); got != goldenV1ReconSHA256 {
		t.Fatalf("full reconstruction drifted: %s", got)
	}

	regions := []struct {
		name         string
		origin, dims [3]int
	}{
		{"full-volume", [3]int{0, 0, 0}, [3]int{24, 17, 9}},
		{"single-point", [3]int{23, 16, 8}, [3]int{1, 1, 1}},
		{"chunk-interior", [3]int{2, 3, 1}, [3]int{5, 4, 3}},
		{"crosses-x-boundary", [3]int{14, 0, 0}, [3]int{6, 5, 5}},
		{"crosses-xy-boundary", [3]int{12, 12, 2}, [3]int{10, 5, 4}},
		{"remainder-corner", [3]int{20, 16, 6}, [3]int{4, 1, 3}},
	}
	for _, rg := range regions {
		t.Run(rg.name, func(t *testing.T) {
			want := cutout(full, vd, rg.origin, rg.dims)
			got, err := DecompressRegion(stream, rg.origin, rg.dims)
			if err != nil {
				t.Fatalf("DecompressRegion: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("region size %d, want %d", len(got), len(want))
			}
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("region sample %d = %g, full reconstruction has %g", i, got[i], want[i])
				}
			}
			for _, w := range []int{1, 2, 4} {
				pw, err := DecompressRegionWorkers(stream, rg.origin, rg.dims, w)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				for i := range want {
					if math.Float64bits(pw[i]) != math.Float64bits(want[i]) {
						t.Fatalf("workers=%d sample %d differs", w, i)
					}
				}
			}
		})
	}

	// Out-of-bounds requests fail cleanly, not panic.
	if _, err := DecompressRegion(stream, [3]int{20, 0, 0}, [3]int{10, 2, 2}); err == nil {
		t.Fatal("out-of-bounds region did not error")
	}
}

// TestV1FixtureRegionCorrupt: structural damage to the v1 container must
// surface as ErrCorrupt from the seekable paths — never a panic. (v1
// frames carry no checksum, so only structural damage is detectable;
// bit flips deep in a SPECK payload may decode to different samples,
// which is exactly why v2 added CRC-32C frames.)
func TestV1FixtureRegionCorrupt(t *testing.T) {
	stream := readV1Fixture(t)
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)/2] },
		"header-flip": func(b []byte) []byte { b[9] ^= 0xff; return b },
		"empty":       func(b []byte) []byte { return nil },
	} {
		mut := mutate(append([]byte(nil), stream...))
		if _, err := DecompressRegion(mut, [3]int{0, 0, 0}, [3]int{4, 4, 2}); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: DecompressRegion returned %v, want ErrCorrupt", name, err)
		}
		if _, err := Describe(mut); err == nil && name != "header-flip" {
			t.Errorf("%s: Describe accepted a damaged container", name)
		}
	}
}

// TestDecompressFloat32WorkersParity: the workers-aware float32 decode
// must produce bit-identical float32 volumes at every worker count, and
// match narrowing the float64 decode.
func TestDecompressFloat32WorkersParity(t *testing.T) {
	data, dims := streamTestInput()
	f32 := make([]float32, len(data))
	for i, v := range data {
		f32[i] = float32(v)
	}
	stream, _, err := CompressPWEFloat32(f32, dims, 1e-3, &Options{ChunkDims: [3]int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}

	wide, wdims, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]float32, len(wide))
	for i, v := range wide {
		want[i] = float32(v)
	}

	for _, w := range []int{0, 1, 2, 3, 8} {
		got, gdims, err := DecompressFloat32Workers(stream, w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if gdims != wdims {
			t.Fatalf("workers=%d dims %v, want %v", w, gdims, wdims)
		}
		for i := range want {
			if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
				t.Fatalf("workers=%d sample %d = %g, want %g", w, i, got[i], want[i])
			}
		}
	}

	// The plain wrapper is the workers=0 path.
	got, _, err := DecompressFloat32(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float32bits(got[i]) != math.Float32bits(want[i]) {
			t.Fatalf("DecompressFloat32 sample %d differs", i)
		}
	}
}
