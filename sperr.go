// Package sperr is a pure-Go implementation of SPERR (SPEck with ERRor
// bounding), the lossy compressor for structured scientific data described
// in "Lossy Scientific Data Compression With SPERR" (Li, Lindstrom, Clyne;
// IPDPS 2023).
//
// SPERR transforms a 2D slice or 3D volume with the CDF 9/7 biorthogonal
// wavelet, codes the coefficients with an improved SPECK algorithm, and —
// in error-bounded mode — explicitly corrects every point whose
// reconstruction error exceeds a user-prescribed point-wise tolerance,
// using a SPECK-inspired outlier coder. Large volumes are split into
// chunks compressed in parallel.
//
// Two compression modes are offered:
//
//   - CompressPWE bounds the maximum point-wise error: every value of the
//     decompressed data is within Tol of the original.
//   - CompressBPP bounds the output size at a target bitrate in bits per
//     point; the embedded SPECK bitstream is truncated at the budget.
//
// Basic usage:
//
//	stream, stats, err := sperr.CompressPWE(data, [3]int{nx, ny, nz}, 1e-6, nil)
//	...
//	recon, dims, err := sperr.Decompress(stream)
package sperr

import (
	"bytes"
	"errors"
	"math"
	"time"

	"sperr/internal/chunk"
	"sperr/internal/codec"
	"sperr/internal/grid"
)

// DefaultChunkDim is the default chunk edge length (the paper's preferred
// 256; see Section V-B for the efficiency/parallelism trade-off).
const DefaultChunkDim = chunk.DefaultChunkDim

// DefaultQFactor is the default coefficient-coding quantization step in
// units of the error tolerance (q = 1.5t, Section IV-D).
const DefaultQFactor = codec.DefaultQFactor

// Options tunes compression. The zero value (or a nil pointer) selects the
// paper's defaults.
type Options struct {
	// ChunkDims bounds the chunk extent along x, y, z. Zero components
	// default to DefaultChunkDim. Chunk dims need not divide the volume
	// dims.
	ChunkDims [3]int
	// Workers is the parallelism budget; <= 0 means GOMAXPROCS. Up to
	// Workers chunks compress concurrently, and when the budget exceeds
	// the number of chunks the surplus splits the data-parallel stages
	// (wavelet passes, outlier scans) inside each chunk. Output streams
	// are byte-identical at every value.
	Workers int
	// QFactor sets the SPECK quantization step to QFactor*Tol in PWE mode;
	// zero means DefaultQFactor. Larger values shift storage from
	// coefficient coding to outlier coding (paper Section IV-D).
	QFactor float64
	// DisableLossless skips the final lossless (DEFLATE) stage.
	DisableLossless bool
	// Entropy enables the arithmetic-coded SPECK variant (SPECK-AC) for
	// the coefficient stream, typically saving a few percent of rate in
	// exchange for slower coding and the loss of progressive (partial)
	// decoding. PWE mode only. The paper's SPERR uses the raw-bit layer,
	// which remains the default.
	Entropy bool
	// Codec selects the coding backend for every chunk: "sperr" (or "",
	// the default), "sz", "zfp", "tthresh", or "mgard". Any value other
	// than SPERR requires PWE mode and writes a container-v3 stream whose
	// chunks the progressive (partial / low-res) decoders cannot open.
	// CompressAdaptive ignores this and picks a backend per chunk.
	Codec string
	// Instrument, when non-nil, receives one ChunkEvent per compressed
	// chunk. Events are delivered in chunk-index order regardless of
	// Workers (out-of-order completions wait in a reorder buffer), so an
	// instrumented run observes the same event sequence at any
	// parallelism. The callback runs on pipeline goroutines and
	// serializes them while it executes — keep it fast.
	Instrument func(ChunkEvent)
}

// ChunkEvent reports one completed chunk compression to the
// Options.Instrument hook: identity, sizes, wall time, the per-stage
// breakdown, and the arena allocation counter.
type ChunkEvent struct {
	// Index is the chunk's position in container (stream) order.
	Index int
	// Dims is the chunk extent.
	Dims [3]int
	// BytesIn is the uncompressed chunk size (points x 8 bytes);
	// BytesOut the compressed chunk stream size.
	BytesIn, BytesOut int
	// Codec names the backend that coded this chunk ("sperr" outside
	// adaptive or fixed-backend compressions).
	Codec string
	// WallTime covers the chunk's copy-in plus all four codec stages.
	WallTime time.Duration
	// TransformTime, SpeckTime, LocateTime and OutlierTime break the
	// chunk's cost into the four pipeline stages (PWE mode exercises all
	// four; other modes leave the outlier stages zero).
	TransformTime, SpeckTime, LocateTime, OutlierTime time.Duration
	// NumOutliers counts points the outlier coder corrected.
	NumOutliers int
	// ScratchGrows counts scratch-arena buffer (re)allocations during
	// this chunk; zero once the worker pool is warm — the pipeline's
	// per-chunk allocation counter.
	ScratchGrows int
}

func (o *Options) chunkOpts(p codec.Params) chunk.Options {
	co := chunk.Options{Params: p}
	if o != nil {
		co.ChunkDims = grid.Dims{NX: o.ChunkDims[0], NY: o.ChunkDims[1], NZ: o.ChunkDims[2]}
		co.Workers = o.Workers
		co.Params.QFactor = o.QFactor
		co.Params.DisableLossless = o.DisableLossless
		co.Params.Entropy = o.Entropy
		if o.Codec != "" && p.Mode != codec.ModeAdaptive {
			id, ok := codec.ParseCodecName(o.Codec)
			if !ok {
				// An unknown name must fail, not silently fall back to
				// SPERR; the out-of-range id is rejected by Params.Validate.
				id = codec.CodecID(0xFF)
			}
			co.Params.Codec = id
		}
		if hook := o.Instrument; hook != nil {
			co.Instrument = func(e chunk.Event) {
				hook(ChunkEvent{
					Index:         e.Index,
					Dims:          [3]int{e.Dims.NX, e.Dims.NY, e.Dims.NZ},
					BytesIn:       e.BytesIn,
					BytesOut:      e.BytesOut,
					Codec:         e.Codec.String(),
					WallTime:      e.WallTime,
					TransformTime: e.Stats.TransformTime,
					SpeckTime:     e.Stats.SpeckTime,
					LocateTime:    e.Stats.LocateTime,
					OutlierTime:   e.Stats.OutlierTime,
					NumOutliers:   e.Stats.NumOutliers,
					ScratchGrows:  e.ScratchGrows,
				})
			}
		}
	}
	return co
}

// Stats summarizes one compression.
type Stats struct {
	// CompressedBytes is the total container size.
	CompressedBytes int
	// NumPoints is the number of data values compressed.
	NumPoints int
	// BPP is the achieved bitrate in bits per point.
	BPP float64
	// NumChunks is how many independently coded chunks the volume used.
	NumChunks int
	// NumOutliers counts points corrected by the outlier coder (PWE mode).
	NumOutliers int
	// SpeckBits and OutlierBits split the pre-lossless coding cost between
	// the two coders (paper Figure 2).
	SpeckBits, OutlierBits uint64
	// WallTime is the end-to-end compression time.
	WallTime time.Duration
	// MaxChunkTime is the longest single-chunk wall time — the parallel
	// pipeline's critical path.
	MaxChunkTime time.Duration
	// TransformTime, SpeckTime, LocateTime and OutlierTime total the four
	// pipeline stages across all chunks (CPU time, so they can exceed
	// WallTime under parallel execution).
	TransformTime, SpeckTime, LocateTime, OutlierTime time.Duration
	// ScratchGrows totals scratch-arena buffer (re)allocations across all
	// workers; near zero in steady state.
	ScratchGrows int
	// CodecCounts maps backend name to the number of chunks it coded;
	// {"sperr": NumChunks} outside adaptive or fixed-backend compressions.
	CodecCounts map[string]int
}

func statsFrom(cs *chunk.Stats) *Stats {
	s := &Stats{
		CompressedBytes: cs.TotalBytes,
		NumPoints:       cs.NumPoints,
		BPP:             cs.BPP(),
		NumChunks:       len(cs.Chunks),
		NumOutliers:     cs.NumOutliers,
		SpeckBits:       cs.SpeckBits,
		OutlierBits:     cs.OutlierBits,
		WallTime:        cs.WallTime,
		MaxChunkTime:    cs.MaxChunkTime,
		ScratchGrows:    cs.ScratchGrows,
		CodecCounts:     cs.CodecCounts,
	}
	for i := range cs.Chunks {
		c := &cs.Chunks[i]
		s.TransformTime += c.TransformTime
		s.SpeckTime += c.SpeckTime
		s.LocateTime += c.LocateTime
		s.OutlierTime += c.OutlierTime
	}
	return s
}

var errDims = errors.New("sperr: dims must be positive and match data length (use nz = 1 for 2D)")

func makeVolume(data []float64, dims [3]int) (*grid.Volume, error) {
	d := grid.Dims{NX: dims[0], NY: dims[1], NZ: dims[2]}
	if !d.Valid() || d.Len() != len(data) {
		return nil, errDims
	}
	return grid.FromSlice(d, data), nil
}

// CompressPWE compresses data (row-major, x fastest, extent dims; use
// dims[2] = 1 for 2D slices) so that every reconstructed value is within
// tol of the original. opts may be nil for defaults.
func CompressPWE(data []float64, dims [3]int, tol float64, opts *Options) ([]byte, *Stats, error) {
	if !(tol > 0) {
		return nil, nil, errors.New("sperr: tolerance must be positive")
	}
	vol, err := makeVolume(data, dims)
	if err != nil {
		return nil, nil, err
	}
	co := opts.chunkOpts(codec.Params{Mode: codec.ModePWE, Tol: tol})
	stream, cs, err := chunk.Compress(vol, co)
	if err != nil {
		return nil, nil, err
	}
	return stream, statsFrom(cs), nil
}

// CompressBPP compresses data to approximately bitsPerPoint bits per value
// (size-bounded mode; no error guarantee). opts may be nil for defaults.
func CompressBPP(data []float64, dims [3]int, bitsPerPoint float64, opts *Options) ([]byte, *Stats, error) {
	if !(bitsPerPoint > 0) {
		return nil, nil, errors.New("sperr: bitsPerPoint must be positive")
	}
	vol, err := makeVolume(data, dims)
	if err != nil {
		return nil, nil, err
	}
	co := opts.chunkOpts(codec.Params{Mode: codec.ModeBPP, BitsPerPoint: bitsPerPoint})
	stream, cs, err := chunk.Compress(vol, co)
	if err != nil {
		return nil, nil, err
	}
	return stream, statsFrom(cs), nil
}

// CompressAdaptive compresses data under the point-wise tolerance tol,
// letting every chunk pick the cheapest coding backend for its content:
// a fast profile (sampled variance plus a roughness estimate) gates a
// trial encode of each candidate on a small sub-block, and the chunk is
// coded by whichever backend won. The output is a container-v3 stream
// whose chunks record their codec; it decodes with Decompress like any
// other stream. Every reconstructed value is within tol of the original
// regardless of the backend chosen. opts may be nil for defaults;
// Options.Codec is ignored (selection owns the choice).
func CompressAdaptive(data []float64, dims [3]int, tol float64, opts *Options) ([]byte, *Stats, error) {
	if !(tol > 0) {
		return nil, nil, errors.New("sperr: tolerance must be positive")
	}
	vol, err := makeVolume(data, dims)
	if err != nil {
		return nil, nil, err
	}
	co := opts.chunkOpts(codec.Params{Mode: codec.ModeAdaptive, Tol: tol})
	stream, cs, err := chunk.Compress(vol, co)
	if err != nil {
		return nil, nil, err
	}
	return stream, statsFrom(cs), nil
}

// Decompress reconstructs a volume compressed by CompressPWE or
// CompressBPP. It returns the data in row-major order and its extent.
func Decompress(stream []byte) ([]float64, [3]int, error) {
	return DecompressWorkers(stream, 0)
}

// DecompressWorkers is Decompress with an explicit worker budget (<= 0
// means GOMAXPROCS). Workers beyond the chunk count split the inverse
// transform inside each chunk; the output is identical at every count.
func DecompressWorkers(stream []byte, workers int) ([]float64, [3]int, error) {
	vol, err := chunk.Decompress(stream, workers)
	if err != nil {
		return nil, [3]int{}, err
	}
	return vol.Data, [3]int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ}, nil
}

// CompressRMSE compresses data so that the root-mean-square error of the
// reconstruction is (approximately, and in practice conservatively) at
// most targetRMSE. This is the average-error-targeted mode the paper's
// Section VII describes as enabled by the near-orthogonality of the
// scaled CDF 9/7 basis: the encoder estimates the reconstruction error in
// the coefficient domain and truncates the embedded stream at the first
// bitplane boundary that meets the target. No point-wise bound.
func CompressRMSE(data []float64, dims [3]int, targetRMSE float64, opts *Options) ([]byte, *Stats, error) {
	if !(targetRMSE > 0) {
		return nil, nil, errors.New("sperr: targetRMSE must be positive")
	}
	vol, err := makeVolume(data, dims)
	if err != nil {
		return nil, nil, err
	}
	co := opts.chunkOpts(codec.Params{Mode: codec.ModeRMSE, TargetRMSE: targetRMSE})
	stream, cs, err := chunk.Compress(vol, co)
	if err != nil {
		return nil, nil, err
	}
	return stream, statsFrom(cs), nil
}

// CompressPSNR compresses data to a target peak-signal-to-noise ratio in
// dB, with the peak taken as the data range (the convention of the
// paper's evaluation). It is a convenience wrapper over CompressRMSE.
func CompressPSNR(data []float64, dims [3]int, psnrDB float64, opts *Options) ([]byte, *Stats, error) {
	if !(psnrDB > 0) {
		return nil, nil, errors.New("sperr: psnrDB must be positive")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range data {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	rng := hi - lo
	if !(rng > 0) {
		rng = 1
	}
	return CompressRMSE(data, dims, rng/math.Pow(10, psnrDB/20), opts)
}

// DecompressPartial reconstructs a volume using only a fraction
// (0 < fraction <= 1) of each chunk's embedded SPECK bits. SPECK
// bitstreams are embedded — any prefix decodes to a valid, coarser
// reconstruction — which makes SPERR streams usable for progressive and
// streaming access (paper Section VII): transmit a prefix, render a
// preview, refine later. Outlier corrections (and hence the PWE guarantee)
// apply only at fraction = 1.
func DecompressPartial(stream []byte, fraction float64) ([]float64, [3]int, error) {
	vol, err := chunk.DecompressPartial(stream, fraction, 0)
	if err != nil {
		return nil, [3]int{}, err
	}
	return vol.Data, [3]int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ}, nil
}

// DecompressLowRes reconstructs a coarsened (multi-resolution) version of
// the volume by leaving the finest `drop` wavelet decomposition levels
// folded: each chunk axis is ceil-halved once per dropped level. Wavelet
// hierarchies are self-similar — each coarsened level resembles the
// full-resolution data — which the paper's Section VII highlights for
// explorative analysis. drop = 0 decodes at full resolution (without
// outlier corrections). Returns the coarse data and its extent.
func DecompressLowRes(stream []byte, drop int) ([]float64, [3]int, error) {
	vol, err := chunk.DecompressLowRes(stream, drop, 0)
	if err != nil {
		return nil, [3]int{}, err
	}
	return vol.Data, [3]int{vol.Dims.NX, vol.Dims.NY, vol.Dims.NZ}, nil
}

// DecompressRegion reconstructs only the box of extent dims anchored at
// origin, decoding just the chunks that intersect it — the random-access
// pattern of the community archives that motivate the paper (Section I):
// a reader of a large stored volume pays only for the chunks its cutout
// touches. The reconstruction carries the same guarantees as Decompress.
func DecompressRegion(stream []byte, origin, dims [3]int) ([]float64, error) {
	return DecompressRegionWorkers(stream, origin, dims, 0)
}

// DecompressRegionWorkers is DecompressRegion with an explicit worker
// budget for the intersecting-chunk decodes (<= 0 means GOMAXPROCS).
func DecompressRegionWorkers(stream []byte, origin, dims [3]int, workers int) ([]float64, error) {
	vol, err := chunk.DecompressRegion(stream, origin[0], origin[1], origin[2],
		grid.Dims{NX: dims[0], NY: dims[1], NZ: dims[2]}, workers)
	if err != nil {
		return nil, err
	}
	return vol.Data, nil
}

// StreamInfo summarizes a compressed stream without decoding its data.
type StreamInfo struct {
	// Version is the container format version (1, 2, or 3).
	Version int
	// Dims is the volume extent; ChunkDims the chunk tiling.
	Dims, ChunkDims [3]int
	// NumChunks is the number of independently coded chunks.
	NumChunks int
	// CompressedBytes is the container size.
	CompressedBytes int
	// FrameBytes is each chunk frame's payload size, in container order.
	FrameBytes []int
	// Mode is "pwe", "bpp", "rmse" or "adaptive" (all chunks of one
	// container share a mode).
	Mode string
	// CodecCounts maps backend name to the number of chunks it coded,
	// from the v3 footer's codec map (pre-v3 streams are all "sperr").
	// Always non-nil.
	CodecCounts map[string]int
	// Tolerance is the point-wise error bound in PWE mode (0 otherwise).
	Tolerance float64
	// Entropy reports the arithmetic-coded bit layer.
	Entropy bool
	// SpeckBits and OutlierBits total the embedded stream sizes across
	// chunks (pre-lossless).
	SpeckBits, OutlierBits uint64
	// Chunks gives each chunk's box in container order — the tiling a
	// random-access reader (or a chunk-granularity cache) needs to map a
	// cutout onto frames without decoding anything.
	Chunks []ChunkBox
}

// ChunkBox is one chunk's extent in volume coordinates, plus the backend
// that coded it.
type ChunkBox struct {
	Origin [3]int
	Dims   [3]int
	// Codec names the chunk's coding backend ("sperr" pre-v3).
	Codec string
}

// Describe inspects a compressed stream — volume geometry, mode,
// tolerance, per-coder bit budgets, frame sizes — without reconstructing
// data. On container v2 it reads only the fixed header and the index
// footer; on v1 it parses each chunk's header through a bounded prefix
// inflate. Cost is independent of the data volume either way.
func Describe(stream []byte) (*StreamInfo, error) {
	info, err := chunk.Describe(stream)
	if err != nil {
		return nil, err
	}
	out := &StreamInfo{
		Version:         info.Version,
		Dims:            [3]int{info.VolumeDims.NX, info.VolumeDims.NY, info.VolumeDims.NZ},
		ChunkDims:       [3]int{info.ChunkDims.NX, info.ChunkDims.NY, info.ChunkDims.NZ},
		NumChunks:       info.NumChunks,
		CompressedBytes: info.TotalBytes,
		FrameBytes:      make([]int, 0, len(info.Chunks)),
		Entropy:         info.Entropy,
		SpeckBits:       info.SpeckBits,
		OutlierBits:     info.OutlierBits,
		CodecCounts:     info.CodecCounts,
	}
	switch info.Mode {
	case codec.ModePWE:
		out.Mode = "pwe"
		out.Tolerance = info.Tol
	case codec.ModeBPP:
		out.Mode = "bpp"
	case codec.ModeRMSE:
		out.Mode = "rmse"
	case codec.ModeAdaptive:
		out.Mode = "adaptive"
		out.Tolerance = info.Tol
	}
	for _, c := range info.Chunks {
		out.FrameBytes = append(out.FrameBytes, c.CompressedBytes)
		out.Chunks = append(out.Chunks, ChunkBox{
			Origin: c.Origin,
			Dims:   [3]int{c.Dims.NX, c.Dims.NY, c.Dims.NZ},
			Codec:  c.Codec.String(),
		})
	}
	return out, nil
}

// CompressPWEFloat32 is CompressPWE for single-precision input. The
// tolerance applies to the float64 promotion of the data.
func CompressPWEFloat32(data []float32, dims [3]int, tol float64, opts *Options) ([]byte, *Stats, error) {
	return CompressPWE(widen(data), dims, tol, opts)
}

// CompressBPPFloat32 is CompressBPP for single-precision input.
func CompressBPPFloat32(data []float32, dims [3]int, bitsPerPoint float64, opts *Options) ([]byte, *Stats, error) {
	return CompressBPP(widen(data), dims, bitsPerPoint, opts)
}

// DecompressFloat32 reconstructs to single precision.
func DecompressFloat32(stream []byte) ([]float32, [3]int, error) {
	return DecompressFloat32Workers(stream, 0)
}

// DecompressFloat32Workers is DecompressFloat32 with an explicit worker
// budget (<= 0 means GOMAXPROCS) — the float32 twin of DecompressWorkers.
// Chunks decode in parallel and narrow to float32 on the worker
// goroutines as they complete, so the float64 intermediate is bounded by
// the in-flight chunk set, never the volume.
func DecompressFloat32Workers(stream []byte, workers int) ([]float32, [3]int, error) {
	dec, err := NewDecoder(bytes.NewReader(stream))
	if err != nil {
		return nil, [3]int{}, err
	}
	dec.SetWorkers(workers)
	dims := dec.Dims()
	out := make([]float32, dims[0]*dims[1]*dims[2])
	err = dec.ForEachChunk(func(ch DecodedChunk) error {
		// Chunks are disjoint, so concurrent narrowing scatters write
		// disjoint regions of out.
		nx, ny := ch.Dims[0], ch.Dims[1]
		for z := 0; z < ch.Dims[2]; z++ {
			for y := 0; y < ny; y++ {
				src := ch.Data[(z*ny+y)*nx : (z*ny+y+1)*nx]
				off := ((ch.Origin[2]+z)*dims[1]+ch.Origin[1]+y)*dims[0] + ch.Origin[0]
				for x, v := range src {
					out[off+x] = float32(v)
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, [3]int{}, err
	}
	return out, dims, nil
}

func widen(data []float32) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = float64(v)
	}
	return out
}
