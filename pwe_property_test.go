package sperr

import (
	"math"
	"testing"
)

// Property: the PWE contract MaxErr <= Tol must hold on awkward extents —
// odd, non-chunk-divisible, degenerate 1D layouts, and volumes smaller
// than one chunk — through the pooled parallel pipeline, across repeated
// runs that reuse warmed arenas.
func TestPWEContractOddShapes(t *testing.T) {
	shapes := [][3]int{
		{17, 33, 5},  // odd, non-divisible by the 16^3 chunking
		{1, 129, 1},  // degenerate 1 x N x 1 line
		{63, 1, 1},   // degenerate line along x
		{7, 7, 7},    // smaller than one chunk
		{16, 16, 16}, // exactly one chunk
		{33, 17, 9},  // every axis leaves a remainder chunk
		{5, 1, 9},    // degenerate plane
	}
	tols := []float64{1.0, 1e-2, 1e-4}
	for _, shape := range shapes {
		data := demoField(shape[0], shape[1], shape[2], int64(shape[0]+shape[1]+shape[2]))
		for _, tol := range tols {
			for _, workers := range []int{1, 4} {
				stream, st, err := CompressPWE(data, shape, tol, &Options{
					ChunkDims: [3]int{16, 16, 16},
					Workers:   workers,
				})
				if err != nil {
					t.Fatalf("%v tol=%g workers=%d: %v", shape, tol, workers, err)
				}
				rec, dims, err := Decompress(stream)
				if err != nil {
					t.Fatalf("%v tol=%g workers=%d: decode: %v", shape, tol, workers, err)
				}
				if dims != shape {
					t.Fatalf("%v: decoded dims %v", shape, dims)
				}
				var worst float64
				for i := range data {
					if e := math.Abs(rec[i] - data[i]); e > worst {
						worst = e
					}
				}
				if worst > tol*(1+1e-9) {
					t.Errorf("%v tol=%g workers=%d: max error %g exceeds tolerance (chunks=%d)",
						shape, tol, workers, worst, st.NumChunks)
				}
			}
		}
	}
}

// Property: every coding backend — not just SPERR — must honor the PWE
// contract MaxErr <= Tol on odd, non-chunk-divisible extents, both when
// pinned via Options.Codec and when chosen by adaptive selection.
func TestPWEContractAllBackends(t *testing.T) {
	shapes := [][3]int{
		{17, 33, 5}, // odd, non-divisible by the 16^3 chunking
		{33, 17, 9}, // every axis leaves a remainder chunk
		{7, 7, 7},   // smaller than one chunk
	}
	tols := []float64{1e-1, 1e-3}
	for _, name := range []string{"sperr", "sz", "zfp", "tthresh", "mgard", "adaptive"} {
		for _, shape := range shapes {
			data := demoField(shape[0], shape[1], shape[2], int64(shape[0]+2*shape[1]+3*shape[2]))
			for _, tol := range tols {
				opts := &Options{ChunkDims: [3]int{16, 16, 16}, Workers: 2}
				var stream []byte
				var err error
				if name == "adaptive" {
					stream, _, err = CompressAdaptive(data, shape, tol, opts)
				} else {
					if name != "sperr" {
						opts.Codec = name
					}
					stream, _, err = CompressPWE(data, shape, tol, opts)
				}
				if err != nil {
					t.Fatalf("%s %v tol=%g: %v", name, shape, tol, err)
				}
				rec, dims, err := Decompress(stream)
				if err != nil {
					t.Fatalf("%s %v tol=%g: decode: %v", name, shape, tol, err)
				}
				if dims != shape {
					t.Fatalf("%s %v: decoded dims %v", name, shape, dims)
				}
				var worst float64
				for i := range data {
					if e := math.Abs(rec[i] - data[i]); e > worst {
						worst = e
					}
				}
				if worst > tol*(1+1e-9) {
					t.Errorf("%s %v tol=%g: max error %g exceeds tolerance", name, shape, tol, worst)
				}
			}
		}
	}
}

// Property: repeated compressions through the shared arena pool must not
// bleed state between volumes of different shapes — interleave shapes and
// verify each round trip independently.
func TestArenaReuseAcrossShapes(t *testing.T) {
	shapes := [][3]int{{17, 33, 5}, {8, 8, 8}, {1, 100, 1}, {17, 33, 5}, {31, 2, 3}}
	tol := 1e-3
	for round := 0; round < 2; round++ {
		for si, shape := range shapes {
			data := demoField(shape[0], shape[1], shape[2], int64(100*round+si))
			stream, _, err := CompressPWE(data, shape, tol, &Options{
				ChunkDims: [3]int{16, 16, 16},
				Workers:   2,
			})
			if err != nil {
				t.Fatalf("round %d shape %v: %v", round, shape, err)
			}
			rec, _, err := Decompress(stream)
			if err != nil {
				t.Fatalf("round %d shape %v: decode: %v", round, shape, err)
			}
			for i := range data {
				if e := math.Abs(rec[i] - data[i]); e > tol*(1+1e-9) {
					t.Fatalf("round %d shape %v: error %g at %d", round, shape, e, i)
				}
			}
		}
	}
}
