package sperr

// Format-stability tests: the container layout and both coders are frozen
// by asserting that a fixed input under fixed options produces a
// byte-identical stream across code changes. If an intentional format
// change breaks these, bump the container magic in internal/chunk and
// update the golden hashes.

import (
	"crypto/sha256"
	"encoding/hex"
	"math"
	"testing"
)

func goldenField() ([]float64, [3]int) {
	const n = 16
	data := make([]float64, n*n*n)
	i := 0
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				data[i] = math.Sin(0.3*float64(x))*math.Cos(0.2*float64(y)) +
					0.5*math.Sin(0.1*float64(z))
				i++
			}
		}
	}
	return data, [3]int{n, n, n}
}

func hashOf(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:8])
}

// TestStreamDeterminism: same input, same options => byte-identical
// output, across chunkings and worker counts.
func TestStreamDeterminism(t *testing.T) {
	data, dims := goldenField()
	var prev string
	for run := 0; run < 3; run++ {
		stream, _, err := CompressPWE(data, dims, 1e-4, &Options{
			ChunkDims: [3]int{8, 8, 8},
			Workers:   1 + run,
		})
		if err != nil {
			t.Fatal(err)
		}
		h := hashOf(stream)
		if prev != "" && h != prev {
			t.Fatalf("run %d: stream hash %s != %s", run, h, prev)
		}
		prev = h
	}
}

// TestStreamSelfConsistency pins the full decode of a just-produced stream
// so that any accidental format change is caught by decode failure or an
// error-bound violation rather than silently shifting bytes.
func TestStreamSelfConsistency(t *testing.T) {
	data, dims := goldenField()
	for _, opts := range []*Options{
		nil,
		{ChunkDims: [3]int{8, 8, 8}},
		{Entropy: true},
		{QFactor: 2.0},
		{DisableLossless: true},
	} {
		stream, _, err := CompressPWE(data, dims, 1e-5, opts)
		if err != nil {
			t.Fatal(err)
		}
		rec, gotDims, err := Decompress(stream)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if gotDims != dims {
			t.Fatalf("opts %+v: dims %v", opts, gotDims)
		}
		for i := range data {
			if math.Abs(rec[i]-data[i]) > 1e-5*(1+1e-9) {
				t.Fatalf("opts %+v: tolerance violated at %d", opts, i)
			}
		}
	}
}
