package sperr

import (
	"bytes"
	"math"
	"testing"
)

// Property: salvage never reports a chunk recovered when its frame's
// CRC-32C no longer matches the payload. Every payload byte of every
// frame is flipped in turn; for each mutant the damaged chunk must be
// skipped with a checksum reason, and a full salvage decode must fill
// the chunk rather than deliver the damaged samples.

// frameRanges returns each frame's [start, end) byte range (length
// prefix through trailing CRC) for a v2 stream.
func frameRanges(t *testing.T, stream []byte) [][2]int {
	t.Helper()
	info, err := Describe(stream)
	if err != nil {
		t.Fatal(err)
	}
	out := make([][2]int, len(info.FrameBytes))
	off := 36
	for i, n := range info.FrameBytes {
		out[i] = [2]int{off, off + 4 + n + 4}
		off = out[i][1]
	}
	return out
}

func TestSalvageNeverRecoversCRCMismatch(t *testing.T) {
	dims := [3]int{12, 10, 6}
	stream, _, err := CompressPWE(demoField(dims[0], dims[1], dims[2], 3), dims, 1e-2,
		&Options{ChunkDims: [3]int{6, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	frames := frameRanges(t, stream)
	if len(frames) < 2 {
		t.Fatalf("fixture has %d frames, want several", len(frames))
	}

	for ci, fr := range frames {
		payload := [2]int{fr[0] + 4, fr[1] - 4}
		for off := payload[0]; off < payload[1]; off++ {
			mut := bytes.Clone(stream)
			mut[off] ^= 0x04

			rep, err := Audit(mut)
			if err != nil {
				t.Fatalf("frame %d byte %d: audit: %v", ci, off, err)
			}
			if rep.Chunks[ci].Recovered {
				t.Fatalf("frame %d byte %d: chunk reported recovered with mismatched CRC", ci, off)
			}
			if got := rep.Chunks[ci].Reason; got != "frame checksum mismatch" {
				t.Fatalf("frame %d byte %d: reason %q", ci, off, got)
			}

			// Strict decode must reject the stream outright.
			if _, _, err := Decompress(mut); err == nil {
				t.Fatalf("frame %d byte %d: strict decode accepted damaged stream", ci, off)
			}
		}

		// One full salvage decode per frame confirms the report translates
		// into filled — not damaged — samples.
		mut := bytes.Clone(stream)
		mut[(payload[0]+payload[1])/2] ^= 0x04
		data, gotDims, rep, err := DecompressSalvage(mut)
		if err != nil {
			t.Fatalf("frame %d: salvage: %v", ci, err)
		}
		if gotDims != dims {
			t.Fatalf("frame %d: dims %v", ci, gotDims)
		}
		if rep.Chunks[ci].Recovered {
			t.Fatalf("frame %d: salvage recovered a CRC-mismatched chunk", ci)
		}
		c := rep.Chunks[ci]
		for z := 0; z < c.Dims.NZ; z++ {
			for y := 0; y < c.Dims.NY; y++ {
				for x := 0; x < c.Dims.NX; x++ {
					i := ((c.Origin[2]+z)*dims[1]+c.Origin[1]+y)*dims[0] + c.Origin[0] + x
					if !math.IsNaN(data[i]) {
						t.Fatalf("frame %d: damaged chunk sample (%d,%d,%d) = %g, want NaN",
							ci, x, y, z, data[i])
					}
				}
			}
		}
	}
}

// A flipped trailing CRC with an intact index footer is the one case
// where the payload itself is provably undamaged: the footer's checksum
// copy still verifies it, so salvage keeps the chunk. This pins the
// asymmetry so it stays deliberate.
func TestSalvageTrailerCRCDamageRecoversThroughFooter(t *testing.T) {
	dims := [3]int{12, 10, 6}
	stream, _, err := CompressPWE(demoField(dims[0], dims[1], dims[2], 4), dims, 1e-2,
		&Options{ChunkDims: [3]int{6, 6, 6}})
	if err != nil {
		t.Fatal(err)
	}
	frames := frameRanges(t, stream)
	mut := bytes.Clone(stream)
	mut[frames[1][1]-2] ^= 0x80 // inside frame 1's trailing CRC

	rep, err := Audit(mut)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.IndexIntact {
		t.Fatal("index footer should be intact")
	}
	if rep.Degraded() {
		t.Fatalf("footer-verified payload lost: skipped %v", rep.SkippedIndices())
	}
	data, _, _, err := DecompressSalvage(mut)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := Decompress(stream)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(data[i]) != math.Float64bits(want[i]) {
			t.Fatalf("sample %d differs after trailer-CRC damage", i)
		}
	}
}
