package sperr

// End-to-end assertions of the paper's headline claims, at the public-API
// level (the per-figure drivers live in internal/experiments; these tests
// pin the conclusions a release would advertise).

import (
	"math"
	"testing"

	"sperr/internal/grid"
	"sperr/internal/metrics"
	"sperr/internal/mgard"
	"sperr/internal/synth"
	"sperr/internal/sz"
	"sperr/internal/zfp"
)

// Claim (abstract): "a compression mode that satisfies a maximum
// point-wise error tolerance".
func TestClaimPWEGuaranteeEndToEnd(t *testing.T) {
	d := grid.D3(32, 32, 32)
	for _, gen := range []func() []float64{
		func() []float64 { return synth.MirandaPressure(d, 1).Data },
		func() []float64 { return synth.S3DTemperature(d, 2).Data },
		func() []float64 { return synth.NyxDarkMatterDensity(d, 3).Data },
	} {
		data := gen()
		tol := metrics.ToleranceForIdx(metrics.Range(data), 20)
		stream, _, err := CompressPWE(data, [3]int{32, 32, 32}, tol, nil)
		if err != nil {
			t.Fatal(err)
		}
		rec, _, err := Decompress(stream)
		if err != nil {
			t.Fatal(err)
		}
		if e := metrics.MaxErr(data, rec); e > tol*(1+1e-9) {
			t.Errorf("PWE guarantee violated: %g > %g", e, tol)
		}
	}
}

// Claim (Section VI-C / Figure 9): "SPERR uses the least number of bits
// to guarantee a given PWE tolerance in all but two cases". At this
// reduced scale we assert it on a representative double-precision field
// against all three error-bounded baselines.
func TestClaimFewestBitsAtTolerance(t *testing.T) {
	d := grid.D3(32, 32, 32)
	vol := synth.MirandaViscosity(d, 5)
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 20)

	sperrStream, _, err := CompressPWE(vol.Data, [3]int{32, 32, 32}, tol, nil)
	if err != nil {
		t.Fatal(err)
	}
	szStream, err := sz.Compress(vol.Data, d, sz.Params{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	zfpStream, err := zfp.Compress(vol.Data, d, zfp.Params{Mode: zfp.ModeFixedAccuracy, Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	mgardStream, err := mgard.Compress(vol.Data, d, mgard.Params{Tol: tol})
	if err != nil {
		t.Fatal(err)
	}
	n := len(sperrStream)
	for name, other := range map[string]int{
		"SZ3": len(szStream), "ZFP": len(zfpStream), "MGARD": len(mgardStream),
	} {
		if n >= other {
			t.Errorf("SPERR (%d bytes) not smaller than %s (%d bytes) at idx 20", n, name, other)
		}
	}
}

// Claim (Section IV-D / Figure 3): the q = 1.5t default sits inside the
// low-bitrate valley — moving q to either end of the sweep range must not
// beat it by more than a sliver.
func TestClaimQFactorSweetSpot(t *testing.T) {
	d := [3]int{32, 32, 32}
	vol := synth.MirandaPressure(grid.D3(32, 32, 32), 7)
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 30)
	size := func(qf float64) int {
		stream, _, err := CompressPWE(vol.Data, d, tol, &Options{QFactor: qf})
		if err != nil {
			t.Fatal(err)
		}
		return len(stream)
	}
	mid := size(1.5)
	lo := size(1.0)
	hi := size(3.0)
	if float64(mid) > 1.02*float64(lo) || float64(mid) > 1.02*float64(hi) {
		t.Errorf("q=1.5t (%d bytes) should be within 2%% of the best of q=t (%d) and q=3t (%d)",
			mid, lo, hi)
	}
}

// Claim (Section III-B / VII): the bitstream is embedded — longer
// prefixes never hurt, and the full stream restores the bound.
func TestClaimEmbeddedStream(t *testing.T) {
	d := [3]int{32, 32, 32}
	vol := synth.MirandaVelocityX(grid.D3(32, 32, 32), 9)
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 25)
	stream, _, err := CompressPWE(vol.Data, d, tol, nil)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for _, frac := range []float64{0.02, 0.1, 0.3, 0.7, 1.0} {
		rec, _, err := DecompressPartial(stream, frac)
		if err != nil {
			t.Fatal(err)
		}
		e := metrics.RMSE(vol.Data, rec)
		if e > prev*1.02 {
			t.Errorf("frac %g: RMSE %g worse than shorter prefix %g", frac, e, prev)
		}
		prev = e
	}
	full, _, err := DecompressPartial(stream, 1)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.MaxErr(vol.Data, full); e > tol*(1+1e-9) {
		t.Errorf("full prefix violates the bound: %g > %g", e, tol)
	}
}

// Claim (Section III-D): chunked parallel compression neither changes the
// guarantee nor the determinism of the output.
func TestClaimChunkedParallelEquivalence(t *testing.T) {
	d := [3]int{40, 40, 40}
	vol := synth.S3DCH4(grid.D3(40, 40, 40), 11)
	tol := metrics.ToleranceForIdx(metrics.Range(vol.Data), 20)
	opts := &Options{ChunkDims: [3]int{16, 16, 16}}
	s1, st, err := CompressPWE(vol.Data, d, tol, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumChunks != 27 {
		t.Fatalf("NumChunks = %d", st.NumChunks)
	}
	opts.Workers = 3
	s2, _, err := CompressPWE(vol.Data, d, tol, opts)
	if err != nil {
		t.Fatal(err)
	}
	if string(s1) != string(s2) {
		t.Error("worker count changed the output stream")
	}
	rec, _, err := Decompress(s1)
	if err != nil {
		t.Fatal(err)
	}
	if e := metrics.MaxErr(vol.Data, rec); e > tol*(1+1e-9) {
		t.Errorf("chunked PWE violated: %g > %g", e, tol)
	}
}
