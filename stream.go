package sperr

import (
	"context"
	"errors"
	"io"

	"sperr/internal/chunk"
	"sperr/internal/codec"
	"sperr/internal/grid"
)

// ErrCorrupt reports an undecodable container stream: bad magic, damaged
// geometry, truncated or checksum-failing frames, or a corrupted index
// footer. Test with errors.Is.
var ErrCorrupt = chunk.ErrCorrupt

// Encoder is the streaming compression engine: it accepts a volume's
// samples incrementally in row-major order (x fastest, any Write
// granularity) and writes container-v2 frames to the underlying io.Writer
// as chunks complete. Chunks compress in parallel; an ordered emitter
// sequences the output, so the byte stream is identical to the one-shot
// Compress functions at every worker count.
//
// Peak memory is bounded by the in-flight chunk set — one accumulation
// slab (volume XY extent x chunk Z extent; none when Write is handed
// whole slabs) plus one chunk per worker — never the volume.
//
// An Encoder is not safe for concurrent use. After Close it can be
// rearmed with Reset, reusing its buffers.
type Encoder struct {
	w    *chunk.Writer
	dims [3]int
}

func newEncoder(w io.Writer, dims [3]int, p codec.Params, opts *Options) (*Encoder, error) {
	d := grid.Dims{NX: dims[0], NY: dims[1], NZ: dims[2]}
	if !d.Valid() {
		return nil, errDims
	}
	cw, err := chunk.NewWriter(w, d, opts.chunkOpts(p))
	if err != nil {
		return nil, err
	}
	return &Encoder{w: cw, dims: dims}, nil
}

// NewEncoderPWE starts a streaming compression of a volume with extent
// dims into w, bounding every point-wise error by tol. opts may be nil.
func NewEncoderPWE(w io.Writer, dims [3]int, tol float64, opts *Options) (*Encoder, error) {
	if !(tol > 0) {
		return nil, errors.New("sperr: tolerance must be positive")
	}
	return newEncoder(w, dims, codec.Params{Mode: codec.ModePWE, Tol: tol}, opts)
}

// NewEncoderBPP starts a streaming size-bounded compression targeting
// bitsPerPoint. opts may be nil.
func NewEncoderBPP(w io.Writer, dims [3]int, bitsPerPoint float64, opts *Options) (*Encoder, error) {
	if !(bitsPerPoint > 0) {
		return nil, errors.New("sperr: bitsPerPoint must be positive")
	}
	return newEncoder(w, dims, codec.Params{Mode: codec.ModeBPP, BitsPerPoint: bitsPerPoint}, opts)
}

// NewEncoderAdaptive starts a streaming compression under the point-wise
// tolerance tol with per-chunk codec selection (the streaming twin of
// CompressAdaptive): each chunk is coded by whichever backend wins its
// trial, and the output is a container-v3 stream. opts may be nil;
// Options.Codec is ignored.
func NewEncoderAdaptive(w io.Writer, dims [3]int, tol float64, opts *Options) (*Encoder, error) {
	if !(tol > 0) {
		return nil, errors.New("sperr: tolerance must be positive")
	}
	return newEncoder(w, dims, codec.Params{Mode: codec.ModeAdaptive, Tol: tol}, opts)
}

// NewEncoderRMSE starts a streaming average-error-targeted compression.
// opts may be nil.
func NewEncoderRMSE(w io.Writer, dims [3]int, targetRMSE float64, opts *Options) (*Encoder, error) {
	if !(targetRMSE > 0) {
		return nil, errors.New("sperr: targetRMSE must be positive")
	}
	return newEncoder(w, dims, codec.Params{Mode: codec.ModeRMSE, TargetRMSE: targetRMSE}, opts)
}

// SetContext attaches a cancellation context to the Encoder: once ctx is
// done, queued chunk compressions are abandoned (in-flight chunks finish)
// and Write/Close return ctx's error. This is the hook a serving layer
// threads a per-request context through so a dropped client stops chunk
// workers promptly. Call it before the first Write; Reset clears it.
func (e *Encoder) SetContext(ctx context.Context) { e.w.SetContext(ctx) }

// Write feeds the next samples of the volume in row-major order. The
// total across all Writes must equal the volume extent by Close time. It
// may block while chunk workers drain.
func (e *Encoder) Write(p []float64) (int, error) { return e.w.Write(p) }

// Close waits for all chunk compressions and writes the index footer.
// The stream is complete only after Close returns nil.
func (e *Encoder) Close() error { return e.w.Close() }

// Reset rearms a closed Encoder for a new volume with the same parameters,
// reusing its buffers.
func (e *Encoder) Reset(w io.Writer, dims [3]int) error {
	d := grid.Dims{NX: dims[0], NY: dims[1], NZ: dims[2]}
	if !d.Valid() {
		return errDims
	}
	if err := e.w.Reset(w, d); err != nil {
		return err
	}
	e.dims = dims
	return nil
}

// Stats returns the compression statistics; valid after a successful
// Close.
func (e *Encoder) Stats() *Stats {
	cs := e.w.Stats()
	if cs == nil {
		return nil
	}
	return statsFrom(cs)
}

// NumChunks returns the number of chunks the volume tiles into.
func (e *Encoder) NumChunks() int { return e.w.NumChunks() }

// PeakInFlightSamples reports the maximum number of chunk samples held in
// worker arenas at any one time — the engine's bounded-memory witness.
func (e *Encoder) PeakInFlightSamples() int { return e.w.PeakInFlightSamples() }

// DecodedChunk is one decoded chunk delivered by Decoder.ForEachChunk.
type DecodedChunk struct {
	// Index is the chunk's position in container order.
	Index int
	// Origin is the chunk's anchor in the volume; Dims its extent.
	Origin, Dims [3]int
	// Data holds the chunk's samples in row-major order. It aliases a
	// worker arena: copy out what you keep before the callback returns.
	Data []float64
}

// Decoder is the streaming decompression engine: it reads container
// frames sequentially from any io.Reader (formats v1, v2, and v3), decodes
// chunks on a worker pool, and delivers each to a callback. Peak decoded
// data in flight is bounded by O(workers x chunk size), never the volume.
type Decoder struct {
	r *chunk.Reader
}

// NewDecoder reads the container header from r and prepares a streaming
// decode with the default (GOMAXPROCS) worker budget.
func NewDecoder(r io.Reader) (*Decoder, error) {
	cr, err := chunk.NewReader(r, 0)
	if err != nil {
		return nil, err
	}
	return &Decoder{r: cr}, nil
}

// Dims returns the volume extent declared by the container header.
func (d *Decoder) Dims() [3]int {
	v := d.r.VolumeDims()
	return [3]int{v.NX, v.NY, v.NZ}
}

// ChunkDims returns the chunk tiling bound declared by the container
// header (chunks at the high boundaries may be smaller).
func (d *Decoder) ChunkDims() [3]int {
	c := d.r.ChunkDims()
	return [3]int{c.NX, c.NY, c.NZ}
}

// NumChunks returns the number of chunks in the container.
func (d *Decoder) NumChunks() int { return d.r.NumChunks() }

// FormatVersion reports the container format version (1, 2, or 3).
func (d *Decoder) FormatVersion() int { return d.r.Version() }

// SetWorkers adjusts the decode worker budget before ForEachChunk (<= 0
// means GOMAXPROCS).
func (d *Decoder) SetWorkers(n int) { d.r.SetWorkers(n) }

// SetContext attaches a cancellation context to the Decoder: once ctx is
// done, the frame producer stops reading and queued chunk decodes are
// abandoned, so ForEachChunk/DecodeAll return ctx's error promptly. Call
// it before ForEachChunk.
func (d *Decoder) SetContext(ctx context.Context) { d.r.SetContext(ctx) }

// SetErrorPolicy selects how the streaming decode reacts to damaged
// frames (default FailFast). Under SkipChunk, intact chunks are delivered
// and damaged ones recorded in SalvageReport; under FillChunk, damaged
// chunks are delivered with fill-valued samples (see SetFillValue) so the
// callback still observes every chunk exactly once. With a tolerant
// policy, frame-level damage no longer makes ForEachChunk return an error
// — consult SalvageReport afterwards. Context cancellation and callback
// errors always fail. Call before ForEachChunk.
func (d *Decoder) SetErrorPolicy(p ErrorPolicy) { d.r.SetPolicy(p) }

// SetFillValue sets the sample value synthesized for damaged chunks under
// FillChunk (default NaN). Call before ForEachChunk.
func (d *Decoder) SetFillValue(v float64) { d.r.SetFill(v) }

// SalvageReport returns the per-chunk outcomes of a decode run under
// SkipChunk or FillChunk: nil before ForEachChunk completes and under
// FailFast.
func (d *Decoder) SalvageReport() *SalvageReport { return d.r.Report() }

// ForEachChunk streams every chunk through fn. fn runs concurrently on
// worker goroutines (chunks are disjoint, so concurrent writes to
// disjoint regions of a shared destination are safe); chunk order is not
// guaranteed. It consumes the Decoder and can be called once.
func (d *Decoder) ForEachChunk(fn func(DecodedChunk) error) error {
	return d.r.ForEach(func(i int, ch grid.Chunk, data []float64) error {
		return fn(DecodedChunk{
			Index:  i,
			Origin: [3]int{ch.X0, ch.Y0, ch.Z0},
			Dims:   [3]int{ch.Dims.NX, ch.Dims.NY, ch.Dims.NZ},
			Data:   data,
		})
	})
}

// DecodeAll streams the remaining chunks into a freshly allocated volume
// and returns it with its extent — the convenience path when the caller
// does want the whole volume in memory.
func (d *Decoder) DecodeAll() ([]float64, [3]int, error) {
	dims := d.Dims()
	vol := grid.NewVolume(d.r.VolumeDims())
	err := d.r.ForEach(func(i int, ch grid.Chunk, data []float64) error {
		vol.InsertSlice(data, ch.Dims, ch.X0, ch.Y0, ch.Z0)
		return nil
	})
	if err != nil {
		return nil, [3]int{}, err
	}
	return vol.Data, dims, nil
}

// PeakInFlightSamples reports the maximum number of decoded samples alive
// at any one time during the streaming decode — at most workers x chunk
// size.
func (d *Decoder) PeakInFlightSamples() int { return d.r.PeakInFlightSamples() }
